//! The execution-cost model that substitutes for wall-clock time.

use crate::CacheStats;
use mixp_float::OpCounts;

/// Converts an operation mix and cache statistics into a scalar cost.
///
/// All constants are in abstract cycles. The ratios — not the absolute
/// values — produce the paper's qualitative shapes:
///
/// * `f32_flop < f64_flop`: packed single-precision arithmetic retires twice
///   as many lanes per cycle, the primary source of mixed-precision speedup.
/// * `heavy_*` nearly equal: divides/sqrts/transcendentals are latency-bound
///   and gain little from narrower operands, so compute kernels dominated by
///   them (eos, planckian) show ≈1.0 speedup, as in Table III.
/// * `cast` is significant: configurations that mix precisions across hot
///   dataflow (or against untransformable literals, as in Hotspot) pay for
///   every boundary crossing.
/// * Memory costs come from the simulated hierarchy, so halving an array's
///   footprint can convert misses into hits (LavaMD).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Cost of one binary64 arithmetic operation.
    pub f64_flop: f64,
    /// Cost of one binary32 arithmetic operation.
    pub f32_flop: f64,
    /// Cost of one binary16 arithmetic operation (4× SIMD width vs f64).
    pub f16_flop: f64,
    /// Cost of one binary64 heavy operation (div/sqrt/exp/…).
    pub heavy_f64: f64,
    /// Cost of one binary32 heavy operation.
    pub heavy_f32: f64,
    /// Cost of one binary16 heavy operation.
    pub heavy_f16: f64,
    /// Cost of one float↔double conversion.
    pub cast: f64,
    /// Cost of an access that hits L1.
    pub l1_hit: f64,
    /// Cost of an access that hits L2.
    pub l2_hit: f64,
    /// Cost of an access served from memory.
    pub mem: f64,
    /// Cost of one dirty writeback.
    pub writeback: f64,
    /// Fallback per-access cost when no cache statistics are available.
    pub untraced_mem_op: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            f64_flop: 1.0,
            f32_flop: 0.5,
            f16_flop: 0.25,
            heavy_f64: 10.0,
            heavy_f32: 9.7,
            heavy_f16: 9.5,
            cast: 1.25,
            l1_hit: 1.0,
            l2_hit: 8.0,
            mem: 40.0,
            writeback: 10.0,
            untraced_mem_op: 1.5,
        }
    }
}

impl CostModel {
    /// Estimates the execution cost of a run.
    ///
    /// When `cache` is `Some`, memory cost comes from the simulated
    /// hierarchy; otherwise each counted load/store is charged
    /// [`CostModel::untraced_mem_op`]. Poisoned cache statistics (the
    /// fault-injection hook, [`CacheStats::poisoned`]) price as NaN: a
    /// corrupted model must surface as a non-finite value the harness can
    /// classify, never as a plausible-looking cost.
    pub fn cost(&self, counts: &OpCounts, cache: Option<&CacheStats>) -> f64 {
        if cache.map_or(false, |s| s.poisoned) {
            return f64::NAN;
        }
        let compute = counts.flops_f64 as f64 * self.f64_flop
            + counts.flops_f32 as f64 * self.f32_flop
            + counts.flops_f16 as f64 * self.f16_flop
            + counts.heavy_f64 as f64 * self.heavy_f64
            + counts.heavy_f32 as f64 * self.heavy_f32
            + counts.heavy_f16 as f64 * self.heavy_f16
            + counts.casts as f64 * self.cast;
        let memory = match cache {
            Some(s) => {
                s.l1_hits as f64 * self.l1_hit
                    + s.l2_hits as f64 * self.l2_hit
                    + s.misses as f64 * self.mem
                    + s.writebacks as f64 * self.writeback
            }
            None => counts.total_mem_ops() as f64 * self.untraced_mem_op,
        };
        compute + memory
    }

    /// Speedup of a candidate run over the reference run
    /// (`cost_ref / cost_candidate`).
    ///
    /// Returns 1.0 when the candidate cost is zero (degenerate empty runs).
    pub fn speedup(
        &self,
        reference: (&OpCounts, Option<&CacheStats>),
        candidate: (&OpCounts, Option<&CacheStats>),
    ) -> f64 {
        let c_ref = self.cost(reference.0, reference.1);
        let c_new = self.cost(candidate.0, candidate.1);
        if c_new == 0.0 {
            1.0
        } else {
            c_ref / c_new
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counts(f32_: u64, f64_: u64, casts: u64) -> OpCounts {
        OpCounts {
            flops_f32: f32_,
            flops_f64: f64_,
            casts,
            ..OpCounts::default()
        }
    }

    #[test]
    fn pure_f32_is_cheaper_than_pure_f64() {
        let m = CostModel::default();
        let single = m.cost(&counts(100, 0, 0), None);
        let double = m.cost(&counts(0, 100, 0), None);
        assert!(single < double);
        assert_eq!(double / single, 2.0);
    }

    #[test]
    fn casts_erode_the_gain() {
        let m = CostModel::default();
        let clean = m.cost(&counts(100, 0, 0), None);
        let casty = m.cost(&counts(100, 0, 100), None);
        let double = m.cost(&counts(0, 100, 0), None);
        assert!(casty > double, "a cast per op makes single slower");
        assert!(casty > clean);
    }

    #[test]
    fn heavy_ops_barely_improve() {
        let m = CostModel::default();
        let h32 = OpCounts {
            heavy_f32: 100,
            ..OpCounts::default()
        };
        let h64 = OpCounts {
            heavy_f64: 100,
            ..OpCounts::default()
        };
        let ratio = m.cost(&h64, None) / m.cost(&h32, None);
        assert!(ratio < 1.1, "heavy speedup should be small, got {ratio}");
        assert!(ratio > 1.0);
    }

    #[test]
    fn cache_misses_dominate_when_present() {
        let m = CostModel::default();
        let c = counts(0, 10, 0);
        let cold = CacheStats {
            accesses: 100,
            l1_hits: 0,
            l2_hits: 0,
            misses: 100,
            ..CacheStats::default()
        };
        let warm = CacheStats {
            accesses: 100,
            l1_hits: 100,
            l2_hits: 0,
            misses: 0,
            ..CacheStats::default()
        };
        assert!(m.cost(&c, Some(&cold)) > 10.0 * m.cost(&c, Some(&warm)));
    }

    #[test]
    fn poisoned_stats_price_as_nan() {
        let m = CostModel::default();
        let c = counts(10, 10, 1);
        let poisoned = CacheStats {
            accesses: 100,
            l1_hits: 100,
            poisoned: true,
            ..CacheStats::default()
        };
        assert!(m.cost(&c, Some(&poisoned)).is_nan());
        let clean = CacheStats {
            poisoned: false,
            ..poisoned
        };
        assert!(m.cost(&c, Some(&clean)).is_finite());
        // And the speedup built on a poisoned side is non-finite too —
        // nothing downstream can mistake it for a real number.
        assert!(m.speedup((&c, Some(&clean)), (&c, Some(&poisoned))).is_nan());
    }

    #[test]
    fn speedup_of_identity_is_one() {
        let m = CostModel::default();
        let c = counts(5, 5, 1);
        assert_eq!(m.speedup((&c, None), (&c, None)), 1.0);
    }

    #[test]
    fn speedup_handles_zero_candidate() {
        let m = CostModel::default();
        let z = OpCounts::default();
        let c = counts(0, 10, 0);
        assert_eq!(m.speedup((&c, None), (&z, None)), 1.0);
    }

    #[test]
    fn untraced_runs_charge_flat_memory() {
        let m = CostModel::default();
        let c = OpCounts {
            loads_f64: 10,
            stores_f64: 10,
            ..OpCounts::default()
        };
        assert_eq!(m.cost(&c, None), 20.0 * m.untraced_mem_op);
    }
}
