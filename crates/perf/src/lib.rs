//! Performance substrate: cache simulation and execution-cost modelling.
//!
//! The paper measures wall-clock speedups on an Intel Xeon cluster. This
//! crate replaces that testbed with a deterministic substitute built from
//! two pieces:
//!
//! * [`CacheSim`] / [`Hierarchy`] — a set-associative, write-back,
//!   write-allocate cache simulator (one or two levels) that consumes the
//!   synthetic memory-access stream emitted by `mixp-float`'s [`MpVec`]
//!   accesses. Because arrays are laid out at their *configured* element
//!   width, lowering an array to single precision genuinely halves its
//!   footprint and changes hit rates — reproducing the LavaMD cache effect
//!   the paper highlights in §V.
//! * [`CostModel`] — converts the operation mix ([`OpCounts`]) and cache
//!   statistics into a scalar execution-cost estimate. Plain f32 flops are
//!   cheaper than f64 (twice the SIMD width), heavy operations (divide,
//!   sqrt, transcendental) cost the same at either precision, and casts cost
//!   extra — reproducing both the "compute-bound kernels don't speed up"
//!   and the "literal-induced casts eat Hotspot's gains" shapes.
//!
//! [`MpVec`]: mixp_float::MpVec
//! [`OpCounts`]: mixp_float::OpCounts
//!
//! # Example
//!
//! ```
//! use mixp_float::{ExecCtx, PrecisionConfig, VarRegistry};
//! use mixp_perf::{CacheParams, CostModel, Hierarchy};
//!
//! let mut reg = VarRegistry::new();
//! let a = reg.fresh("a");
//! let cfg = PrecisionConfig::all_double(reg.len());
//! let mut cache = Hierarchy::new(CacheParams::default());
//! let mut ctx = ExecCtx::with_tracer(&cfg, &mut cache);
//! let mut v = ctx.alloc_vec(a, 1024);
//! for i in 0..1024 {
//!     v.set(&mut ctx, i, i as f64);
//! }
//! let counts = ctx.counts();
//! drop(ctx);
//! let stats = cache.stats();
//! assert_eq!(stats.accesses, 1024);
//! let cost = CostModel::default().cost(&counts, Some(&stats));
//! assert!(cost > 0.0);
//! ```

pub mod bench;
mod cache;
mod cost;
pub mod profile;

pub use bench::{BenchGroup, Bencher};
pub use cache::{CacheParams, CacheSim, CacheStats, Hierarchy, LevelParams};
pub use cost::CostModel;
pub use profile::{attribute, AccessProfiler, Tee, VarTraffic};
