//! Per-variable memory profiling.
//!
//! The paper's runtime library serves "instrumentation and profiling"
//! (§III-A): before searching, a user wants to know *which* variables carry
//! the traffic, because lowering a cold variable buys nothing while
//! lowering the hot arrays can change cache behaviour outright (the LavaMD
//! observation of §V).
//!
//! [`AccessProfiler`] is a [`MemoryTracer`] that tallies reads/writes per
//! cache line; [`attribute`] joins those tallies with the execution
//! context's allocation log to produce per-variable traffic reports. Use
//! [`Tee`] to profile and simulate the cache in the same run.

use mixp_float::{MemoryTracer, VarId};
use std::collections::HashMap;

/// Line-granular access tally.
#[derive(Debug, Clone, Default)]
pub struct AccessProfiler {
    /// 64-byte line address → (reads, writes).
    lines: HashMap<u64, (u64, u64)>,
}

impl AccessProfiler {
    /// Creates an empty profiler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct cache lines touched.
    pub fn lines_touched(&self) -> usize {
        self.lines.len()
    }

    /// Total accesses recorded.
    pub fn total_accesses(&self) -> u64 {
        self.lines.values().map(|(r, w)| r + w).sum()
    }
}

impl MemoryTracer for AccessProfiler {
    fn access(&mut self, addr: u64, _bytes: u8, write: bool) {
        let entry = self.lines.entry(addr >> 6).or_insert((0, 0));
        if write {
            entry.1 += 1;
        } else {
            entry.0 += 1;
        }
    }
}

/// Forwards every access to two tracers (e.g. profile + cache-simulate in
/// one run).
pub struct Tee<'a> {
    a: &'a mut dyn MemoryTracer,
    b: &'a mut dyn MemoryTracer,
}

impl<'a> std::fmt::Debug for Tee<'a> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tee").finish_non_exhaustive()
    }
}

impl<'a> Tee<'a> {
    /// Combines two tracers.
    pub fn new(a: &'a mut dyn MemoryTracer, b: &'a mut dyn MemoryTracer) -> Self {
        Tee { a, b }
    }
}

impl<'a> MemoryTracer for Tee<'a> {
    fn access(&mut self, addr: u64, bytes: u8, write: bool) {
        self.a.access(addr, bytes, write);
        self.b.access(addr, bytes, write);
    }
}

/// Traffic attributed to one program variable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VarTraffic {
    /// The variable.
    pub var: VarId,
    /// Bytes reserved for it (sums over repeated allocations, e.g. per
    /// iteration).
    pub bytes_reserved: u64,
    /// Distinct cache lines of its ranges that were touched.
    pub lines_touched: u64,
    /// Element reads observed in its ranges.
    pub reads: u64,
    /// Element writes observed in its ranges.
    pub writes: u64,
}

impl VarTraffic {
    /// Total accesses (reads + writes).
    pub fn total(&self) -> u64 {
        self.reads + self.writes
    }
}

/// Joins a line tally with an allocation log (`ExecCtx::allocations()`),
/// producing per-variable traffic sorted by total accesses, hottest first.
///
/// Allocations are 64-byte aligned by construction, so a line belongs to at
/// most one allocation. Accesses outside any allocation (untyped index
/// arrays) are ignored here — they are not tunable.
pub fn attribute(profiler: &AccessProfiler, allocations: &[(VarId, u64, u64)]) -> Vec<VarTraffic> {
    // line → allocation owner.
    let mut owner: HashMap<u64, VarId> = HashMap::new();
    let mut traffic: HashMap<VarId, VarTraffic> = HashMap::new();
    for &(var, base, bytes) in allocations {
        let t = traffic.entry(var).or_insert(VarTraffic {
            var,
            bytes_reserved: 0,
            lines_touched: 0,
            reads: 0,
            writes: 0,
        });
        t.bytes_reserved += bytes;
        if bytes == 0 {
            continue;
        }
        let first = base >> 6;
        let last = (base + bytes - 1) >> 6;
        for line in first..=last {
            owner.insert(line, var);
        }
    }
    for (&line, &(reads, writes)) in &profiler.lines {
        if let Some(&var) = owner.get(&line) {
            let t = traffic.get_mut(&var).expect("owner implies entry");
            t.lines_touched += 1;
            t.reads += reads;
            t.writes += writes;
        }
    }
    let mut out: Vec<VarTraffic> = traffic.into_values().collect();
    out.sort_by(|a, b| b.total().cmp(&a.total()).then(a.var.cmp(&b.var)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mixp_float::{ExecCtx, PrecisionConfig, VarRegistry};

    #[test]
    fn profiler_tallies_lines() {
        let mut p = AccessProfiler::new();
        p.access(0, 8, false);
        p.access(8, 8, false); // same line
        p.access(64, 8, true); // next line
        assert_eq!(p.lines_touched(), 2);
        assert_eq!(p.total_accesses(), 3);
    }

    #[test]
    fn attribution_assigns_traffic_to_the_right_variable() {
        let mut reg = VarRegistry::new();
        let a = reg.fresh("a");
        let b = reg.fresh("b");
        let cfg = PrecisionConfig::all_double(reg.len());
        let mut prof = AccessProfiler::new();
        let mut ctx = ExecCtx::with_tracer(&cfg, &mut prof);
        let mut va = ctx.alloc_vec(a, 16);
        let vb = ctx.alloc_vec(b, 16);
        for i in 0..16 {
            va.set(&mut ctx, i, 1.0);
        }
        let _ = vb.get(&mut ctx, 3);
        let allocs = ctx.allocations().to_vec();
        drop(ctx);
        let report = attribute(&prof, &allocs);
        assert_eq!(report[0].var, a, "a is hottest");
        assert_eq!(report[0].writes, 16);
        assert_eq!(report[0].reads, 0);
        assert_eq!(report[0].lines_touched, 2); // 16 doubles = 2 lines
        let tb = report.iter().find(|t| t.var == b).unwrap();
        assert_eq!(tb.reads, 1);
        assert_eq!(tb.bytes_reserved, 128);
    }

    #[test]
    fn tee_forwards_to_both() {
        let mut p1 = AccessProfiler::new();
        let mut p2 = AccessProfiler::new();
        {
            let mut tee = Tee::new(&mut p1, &mut p2);
            tee.access(128, 8, false);
        }
        assert_eq!(p1.total_accesses(), 1);
        assert_eq!(p2.total_accesses(), 1);
    }

    #[test]
    fn untouched_variables_report_zero() {
        let mut reg = VarRegistry::new();
        let a = reg.fresh("a");
        let cfg = PrecisionConfig::all_double(reg.len());
        let mut prof = AccessProfiler::new();
        let mut ctx = ExecCtx::with_tracer(&cfg, &mut prof);
        let _v = ctx.alloc_vec(a, 8);
        let allocs = ctx.allocations().to_vec();
        drop(ctx);
        let report = attribute(&prof, &allocs);
        assert_eq!(report[0].total(), 0);
        assert_eq!(report[0].bytes_reserved, 64);
    }
}
