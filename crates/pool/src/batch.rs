//! The shared state of one in-flight `run_batch` call.
//!
//! A batch is *not* a queue of items: it is a single claim cursor over
//! `0..len`. The caller enqueues up to `workers - 1` **claimer tasks** (all
//! pointing at the same [`BatchShared`]) and then claims items itself.
//! Whoever holds a claimer — a pool worker that dequeued it, a thief that
//! stole it, or the caller draining its own leftovers — loops the cursor
//! until the batch is exhausted. Work distribution is therefore as fine as
//! items, while queue traffic is bounded by the worker count.
//!
//! The struct lives on the **caller's stack** for the duration of
//! `run_batch`; the claimer protocol (the `outstanding` latch) guarantees no
//! task pointer outlives it.

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::Duration;

/// Locks a mutex, recovering the data from a poisoned lock. Every value
/// guarded this way is updated in one step, so a panicking holder cannot
/// leave a torn value behind.
pub(crate) fn lock_recovering<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Type-erased batch state shared between the caller and its claimers.
pub(crate) struct BatchShared {
    /// Calls the caller's closure with one item index. Safety contract:
    /// `ctx` is the `&F` the batch was built from, alive for the whole
    /// batch.
    run_item: unsafe fn(*const (), usize),
    ctx: *const (),
    /// Next unclaimed item; claiming is the only cross-thread coordination
    /// on the items themselves.
    cursor: AtomicUsize,
    len: usize,
    /// Set once an item panics: remaining items are skipped so the caller
    /// can rethrow promptly.
    poisoned: AtomicBool,
    /// First panic payload, rethrown by the caller via `resume_unwind`.
    panic: Mutex<Option<Box<dyn Any + Send>>>,
    /// Enqueued claimer tasks not yet retired. The caller blocks on this
    /// latch before returning, which is what makes the stack storage sound.
    outstanding: Mutex<usize>,
    done: Condvar,
}

impl BatchShared {
    /// Builds the batch over `f`, expecting exactly `claimers` enqueued
    /// claimer tasks to retire (set *before* any task becomes visible).
    pub(crate) fn new<F: Fn(usize) + Sync>(f: &F, len: usize, claimers: usize) -> Self {
        unsafe fn call<F: Fn(usize) + Sync>(ctx: *const (), index: usize) {
            unsafe { (*ctx.cast::<F>())(index) }
        }
        BatchShared {
            run_item: call::<F>,
            ctx: (f as *const F).cast(),
            cursor: AtomicUsize::new(0),
            len,
            poisoned: AtomicBool::new(false),
            panic: Mutex::new(None),
            outstanding: Mutex::new(claimers),
            done: Condvar::new(),
        }
    }

    /// Claims and runs items until the cursor is exhausted. Item panics are
    /// caught here — the first payload is kept for the caller to rethrow,
    /// and the batch is poisoned so later claims skip their items.
    pub(crate) fn run_items(&self) {
        loop {
            let index = self.cursor.fetch_add(1, Ordering::Relaxed);
            if index >= self.len {
                return;
            }
            if self.poisoned.load(Ordering::Relaxed) {
                continue;
            }
            let run = catch_unwind(AssertUnwindSafe(|| unsafe {
                (self.run_item)(self.ctx, index)
            }));
            if let Err(payload) = run {
                self.poisoned.store(true, Ordering::Relaxed);
                let mut slot = lock_recovering(&self.panic);
                if slot.is_none() {
                    *slot = Some(payload);
                }
            }
        }
    }

    /// Consumes one claimer: called exactly once per enqueued task, whether
    /// it ran (a worker executed it) or was drained unrun by the caller.
    pub(crate) fn retire(&self) {
        let mut outstanding = lock_recovering(&self.outstanding);
        *outstanding = outstanding.saturating_sub(1);
        if *outstanding == 0 {
            self.done.notify_all();
        }
    }

    /// Blocks until every enqueued claimer has retired. The timeout is a
    /// liveness backstop only; the normal wake-up is `retire`'s notify.
    pub(crate) fn wait_retired(&self) {
        let mut outstanding = lock_recovering(&self.outstanding);
        while *outstanding > 0 {
            let (guard, _) = self
                .done
                .wait_timeout(outstanding, Duration::from_millis(5))
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            outstanding = guard;
        }
    }

    /// The recorded panic payload, if any item panicked.
    pub(crate) fn take_panic(&self) -> Option<Box<dyn Any + Send>> {
        lock_recovering(&self.panic).take()
    }
}

/// Runs one claimer task taken from a queue.
///
/// # Safety
///
/// `task` must point at a live [`BatchShared`] — guaranteed by the pool
/// protocol: the owning `run_batch` does not return until this claimer (and
/// every other one) has retired.
pub(crate) unsafe fn execute_claimer(task: *const BatchShared) {
    let batch = unsafe { &*task };
    batch.run_items();
    batch.retire();
}
