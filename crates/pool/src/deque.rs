//! A bounded Chase–Lev work-stealing deque over claimer-task pointers.
//!
//! One deque belongs to one pool worker (its *owner*). The owner pushes and
//! pops at the **bottom** (LIFO — newest batch first, so a worker finishes
//! the batch it just opened before returning to older work), while any other
//! thread steals from the **top** (FIFO — the oldest enqueued batch, which
//! is the coarsest outstanding work). This is the classic dynamic-circular
//! deque of Chase & Lev with the C11 orderings of Lê et al., specialised two
//! ways for this workspace:
//!
//! * **bounded**: the buffer never grows. Tasks here are batch *claimers*
//!   (at most `workers - 1` per in-flight batch), so a fixed power-of-two
//!   capacity is plenty; on overflow the caller routes the task through the
//!   pool's global injector instead.
//! * **POD tasks**: a task is a raw `*const BatchShared`. Slots are
//!   `AtomicPtr`, so the racy speculative read in `steal` is a defined
//!   atomic load, and a thief that loses the top CAS simply discards the
//!   value it read.
//!
//! Memory safety of the pointee is the pool's contract, not the deque's:
//! `run_batch` keeps its `BatchShared` alive until every enqueued claimer
//! has been consumed (executed or drained) and retired.

use crate::batch::BatchShared;
use std::sync::atomic::{fence, AtomicIsize, AtomicPtr, Ordering};

/// Fixed slot count; must be a power of two. At most `workers - 1` claimers
/// exist per in-flight batch and nesting is shallow (campaign → search), so
/// 256 is far above any reachable depth.
pub(crate) const DEQUE_CAP: usize = 256;

pub(crate) struct Deque {
    /// Steal end; monotonically increasing. `isize` so the transient
    /// `bottom = -1` state of a pop-on-empty compares correctly.
    top: AtomicIsize,
    /// Owner end; only the owner writes it (except the restore in `pop`).
    bottom: AtomicIsize,
    slots: Box<[AtomicPtr<BatchShared>]>,
}

impl Deque {
    pub(crate) fn new() -> Self {
        Deque {
            top: AtomicIsize::new(0),
            bottom: AtomicIsize::new(0),
            slots: (0..DEQUE_CAP)
                .map(|_| AtomicPtr::new(std::ptr::null_mut()))
                .collect(),
        }
    }

    fn slot(&self, index: isize) -> &AtomicPtr<BatchShared> {
        &self.slots[(index as usize) & (DEQUE_CAP - 1)]
    }

    /// Owner-only: pushes a task at the bottom. `Err(task)` when the buffer
    /// is full (route through the injector).
    ///
    /// The full check uses an `Acquire` load of `top`, which can only
    /// under-estimate how much room exists — so a push never overwrites a
    /// slot a thief may still read: reusing the slot of top index `t`
    /// requires `bottom = t + CAP`, which this check refuses until `top`
    /// itself has moved past `t`.
    pub(crate) fn push(&self, task: *const BatchShared) -> Result<(), *const BatchShared> {
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Acquire);
        if b - t >= DEQUE_CAP as isize {
            return Err(task);
        }
        self.slot(b).store(task.cast_mut(), Ordering::Relaxed);
        // Release: a thief that observes the new bottom also observes the
        // slot write above and the caller's initialisation of the pointee.
        self.bottom.store(b + 1, Ordering::Release);
        Ok(())
    }

    /// Owner-only: pops the most recently pushed task.
    ///
    /// The single-element race against thieves is resolved by competing on
    /// the same `top` CAS the thieves use: whoever advances `top` owns the
    /// element, the loser backs off empty-handed.
    pub(crate) fn pop(&self) -> Option<*const BatchShared> {
        let b = self.bottom.load(Ordering::Relaxed) - 1;
        self.bottom.store(b, Ordering::Relaxed);
        // Order the bottom reservation before reading top, pairing with the
        // fence in `steal` — exactly one side wins the last element.
        fence(Ordering::SeqCst);
        let t = self.top.load(Ordering::Relaxed);
        if t < b {
            // More than one element: the reservation alone is enough.
            return Some(self.slot(b).load(Ordering::Relaxed).cast_const());
        }
        let result = if t == b {
            // Last element: race the thieves for it on the top CAS.
            self.top
                .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                .is_ok()
                .then(|| self.slot(b).load(Ordering::Relaxed).cast_const())
        } else {
            None // already empty
        };
        self.bottom.store(b + 1, Ordering::Relaxed);
        result
    }

    /// Thief: steals the oldest task. Retries internally on CAS contention
    /// and returns `None` only when the deque is (transiently) empty.
    pub(crate) fn steal(&self) -> Option<*const BatchShared> {
        loop {
            let t = self.top.load(Ordering::Acquire);
            fence(Ordering::SeqCst);
            let b = self.bottom.load(Ordering::Acquire);
            if t >= b {
                return None;
            }
            // Speculative read: may be concurrently overwritten only after
            // `top` passes `t` (see `push`), in which case the CAS below
            // fails and the value is discarded.
            let task = self.slot(t).load(Ordering::Relaxed);
            if self
                .top
                .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                .is_ok()
            {
                return Some(task.cast_const());
            }
        }
    }

    /// Thief: steals up to half of the victim's observed tasks (rounded up,
    /// capped by `out.len()`), oldest first. Returns how many slots of `out`
    /// were filled; `0` means the deque looked empty.
    ///
    /// Deliberately a loop of the proven single-element [`Deque::steal`]
    /// rather than one width-`k` CAS of `top`: the owner's multi-element
    /// [`Deque::pop`] path takes `bottom - 1` *without* touching `top`
    /// whenever it observes `top < bottom - 1`, so a thief that claimed the
    /// range `t..t+k` in one CAS could race the owner onto a slot inside
    /// that range and hand the same claimer out twice. Per-element CAS keeps
    /// the original safety argument intact; the batching win — one victim
    /// visit migrates a whole claim-front — is preserved, and an early
    /// `None` (another thief or the owner drained it first) just ends the
    /// batch short.
    pub(crate) fn steal_batch(&self, out: &mut [*const BatchShared]) -> usize {
        let t = self.top.load(Ordering::Acquire);
        let b = self.bottom.load(Ordering::Acquire);
        let observed = (b - t).max(0) as usize;
        let want = observed.div_ceil(2).min(out.len());
        let mut taken = 0;
        while taken < want {
            match self.steal() {
                Some(task) => {
                    out[taken] = task;
                    taken += 1;
                }
                None => break,
            }
        }
        taken
    }

    /// Whether the deque currently looks non-empty. Advisory — used only
    /// for the workers' sleep/retry decision, never for correctness.
    pub(crate) fn has_work(&self) -> bool {
        self.bottom.load(Ordering::Acquire) > self.top.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ptr(tag: usize) -> *const BatchShared {
        // Deque operations never dereference tasks, so tagged addresses are
        // enough to track identity through push/pop/steal.
        (tag * 8 + 0x1000) as *const BatchShared
    }

    #[test]
    fn owner_pop_is_lifo_and_steal_is_fifo() {
        let d = Deque::new();
        for i in 0..4 {
            d.push(ptr(i)).unwrap();
        }
        assert_eq!(d.steal(), Some(ptr(0)), "thief takes the oldest");
        assert_eq!(d.pop(), Some(ptr(3)), "owner takes the newest");
        assert_eq!(d.steal(), Some(ptr(1)));
        assert_eq!(d.pop(), Some(ptr(2)));
        assert_eq!(d.pop(), None);
        assert_eq!(d.steal(), None);
    }

    #[test]
    fn push_fails_only_when_full() {
        let d = Deque::new();
        for i in 0..DEQUE_CAP {
            assert!(d.push(ptr(i)).is_ok(), "slot {i}");
        }
        assert_eq!(d.push(ptr(999)), Err(ptr(999)));
        assert_eq!(d.steal(), Some(ptr(0)));
        assert!(d.push(ptr(999)).is_ok(), "stealing frees a slot");
    }

    #[test]
    fn empty_pop_leaves_the_deque_usable() {
        let d = Deque::new();
        assert_eq!(d.pop(), None);
        assert_eq!(d.steal(), None);
        d.push(ptr(7)).unwrap();
        assert!(d.has_work());
        assert_eq!(d.pop(), Some(ptr(7)));
        assert!(!d.has_work());
    }

    #[test]
    fn steal_batch_takes_half_rounded_up_oldest_first() {
        let d = Deque::new();
        for i in 0..5 {
            d.push(ptr(i)).unwrap();
        }
        let mut buf = [std::ptr::null::<BatchShared>(); 8];
        let taken = d.steal_batch(&mut buf);
        assert_eq!(taken, 3, "5 tasks -> half rounded up");
        assert_eq!(&buf[..3], &[ptr(0), ptr(1), ptr(2)], "FIFO order");
        // The owner keeps the newer half.
        assert_eq!(d.pop(), Some(ptr(4)));
        assert_eq!(d.pop(), Some(ptr(3)));
        assert_eq!(d.pop(), None);
    }

    #[test]
    fn steal_batch_respects_buffer_capacity_and_empty_deques() {
        let d = Deque::new();
        let mut buf = [std::ptr::null::<BatchShared>(); 2];
        assert_eq!(d.steal_batch(&mut buf), 0, "empty deque steals nothing");
        for i in 0..10 {
            d.push(ptr(i)).unwrap();
        }
        assert_eq!(d.steal_batch(&mut buf), 2, "capped by the buffer");
        assert_eq!(&buf[..], &[ptr(0), ptr(1)]);
        // A single remaining task is still taken (half of 1 rounds up).
        let d1 = Deque::new();
        d1.push(ptr(42)).unwrap();
        assert_eq!(d1.steal_batch(&mut buf), 1);
        assert_eq!(buf[0], ptr(42));
    }

    #[test]
    fn concurrent_batch_thieves_and_owner_lose_nothing() {
        use std::sync::atomic::AtomicBool;
        use std::sync::{Arc, Mutex};

        const PUSHES: usize = 2000;
        let deque = Arc::new(Deque::new());
        let taken: Arc<Mutex<Vec<usize>>> = Arc::new(Mutex::new(Vec::new()));
        let done = Arc::new(AtomicBool::new(false));

        let thieves: Vec<_> = (0..3)
            .map(|_| {
                let deque = Arc::clone(&deque);
                let taken = Arc::clone(&taken);
                let done = Arc::clone(&done);
                std::thread::spawn(move || {
                    let mut buf = [std::ptr::null::<BatchShared>(); 4];
                    loop {
                        match deque.steal_batch(&mut buf) {
                            0 if done.load(Ordering::Acquire) => break,
                            0 => std::hint::spin_loop(),
                            n => {
                                let mut got = taken.lock().unwrap();
                                got.extend(buf[..n].iter().map(|&p| p as usize));
                            }
                        }
                    }
                })
            })
            .collect();

        let mut owner_got = Vec::new();
        let mut next = 0;
        while next < PUSHES {
            for _ in 0..3 {
                if next < PUSHES && deque.push(ptr(next)).is_ok() {
                    next += 1;
                }
            }
            if let Some(task) = deque.pop() {
                owner_got.push(task as usize);
            }
        }
        while let Some(task) = deque.pop() {
            owner_got.push(task as usize);
        }
        done.store(true, Ordering::Release);
        for t in thieves {
            t.join().unwrap();
        }

        let mut all: Vec<usize> = taken.lock().unwrap().clone();
        all.extend(owner_got);
        all.sort_unstable();
        let expected: Vec<usize> = (0..PUSHES).map(|i| ptr(i) as usize).collect();
        assert_eq!(all, expected, "every task claimed exactly once");
    }

    #[test]
    fn concurrent_thieves_and_owner_lose_nothing() {
        use std::sync::atomic::AtomicBool;
        use std::sync::{Arc, Mutex};

        const PUSHES: usize = 2000;
        let deque = Arc::new(Deque::new());
        let taken: Arc<Mutex<Vec<usize>>> = Arc::new(Mutex::new(Vec::new()));
        let done = Arc::new(AtomicBool::new(false));

        let thieves: Vec<_> = (0..3)
            .map(|_| {
                let deque = Arc::clone(&deque);
                let taken = Arc::clone(&taken);
                let done = Arc::clone(&done);
                std::thread::spawn(move || loop {
                    match deque.steal() {
                        Some(task) => taken.lock().unwrap().push(task as usize),
                        None if done.load(Ordering::Acquire) => break,
                        None => std::hint::spin_loop(),
                    }
                })
            })
            .collect();

        let mut owner_got = Vec::new();
        let mut next = 0;
        while next < PUSHES {
            // Keep the deque shallow so owner pops and steals constantly
            // contend on the last-element CAS.
            for _ in 0..3 {
                if next < PUSHES && deque.push(ptr(next)).is_ok() {
                    next += 1;
                }
            }
            if let Some(task) = deque.pop() {
                owner_got.push(task as usize);
            }
        }
        while let Some(task) = deque.pop() {
            owner_got.push(task as usize);
        }
        done.store(true, Ordering::Release);
        for t in thieves {
            t.join().unwrap();
        }

        let mut all: Vec<usize> = taken.lock().unwrap().clone();
        all.extend(owner_got);
        all.sort_unstable();
        let expected: Vec<usize> = (0..PUSHES).map(|i| ptr(i) as usize).collect();
        assert_eq!(all, expected, "every task claimed exactly once");
    }
}
