//! `mixp_pool` — the hermetic work-stealing worker pool shared by the
//! campaign scheduler and the evaluator.
//!
//! # Why one pool
//!
//! The workspace has two parallel layers: `run_campaign` fans jobs out, and
//! every `Evaluator::evaluate_batch` inside a search fans configuration
//! runs out. Historically each layer spawned its own `MIXP_WORKERS` scoped
//! threads, so a nested campaign ran up to W×W live threads and DD/HR paid
//! thread-spawn cost on every small frontier. This crate replaces both with
//! one arena: campaign jobs and batch items are tasks in the same pool, so
//! one knob sizes one pool, nested parallelism composes without
//! oversubscription, and idle campaign workers steal batch items instead of
//! sitting blocked.
//!
//! # Shape
//!
//! A [`Pool`] of parallelism `p` spawns `p - 1` worker threads; the caller
//! of [`Pool::run_batch`] is the `p`-th participant. Each worker owns a
//! bounded Chase–Lev deque (owner pushes/pops LIFO at the bottom, thieves
//! steal FIFO at the top); a mutex-and-condvar **injector** accepts tasks
//! from threads that are not pool workers and is where idle workers park.
//! A batch enqueues up to `p - 1` *claimer* tasks over one shared claim
//! cursor ([`batch`] module), so distribution is per-item while queue
//! traffic is per-worker.
//!
//! A thread-local ambient handle ([`Pool::current`]) lets nested code —
//! an evaluator built inside a campaign job — join the pool it is already
//! running on instead of creating a second one.
//!
//! # Determinism
//!
//! The pool executes closures; it never reorders observable effects. Both
//! call sites keep their sequential admission/commit phases (the evaluator
//! charges budget and commits records in submission order; the scheduler
//! stores results by job index), so outcomes are bit-identical for any
//! worker count and any steal schedule — property-tested in the harness.
//!
//! Item panics are caught per item, the first payload is rethrown in the
//! batch caller (`resume_unwind`), and neither the pool nor its workers die
//! with it: job-level panic isolation keeps working unchanged.
//!
//! # Steal policy
//!
//! `MIXP_STEAL` picks how a worker raids a sibling's deque: `one` (default)
//! takes the single oldest task per visit — the classic Chase–Lev steal —
//! and `half` ([`StealPolicy::Half`]) migrates up to half the victim's
//! observed tasks in one visit, executing the oldest and parking the rest
//! on the thief's own deque. Half-stealing trades a little per-steal work
//! for fewer victim round-trips when many tiny batches are in flight (DD's
//! frontier shape); both policies are observably identical in results.
//!
//! Zero dependencies outside the workspace; `mixp-obs` (itself
//! dependency-free) provides the gauges and counters that make the thread
//! accounting observable: `pool.live_threads`, `pool.peak_threads`,
//! `pool.created`, `pool.steals`, `pool.steal_batch`, `pool.batches`,
//! `pool.injector_depth`.

mod batch;
mod deque;

use batch::{execute_claimer, lock_recovering, BatchShared};
use deque::Deque;
use mixp_obs::{Obs, Value};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Parses a `MIXP_WORKERS` value: `Ok(Some(n))` for a positive integer,
/// `Ok(None)` for unset/empty (caller picks its default), `Err(message)`
/// for anything else. Pure — the process-wide warn-once lives in
/// [`env_workers`].
pub fn parse_workers(raw: &str) -> Result<Option<usize>, String> {
    let trimmed = raw.trim();
    if trimmed.is_empty() {
        return Ok(None);
    }
    match trimmed.parse::<usize>() {
        Ok(n) if n > 0 => Ok(Some(n)),
        _ => Err(format!(
            "ignoring invalid MIXP_WORKERS value {raw:?} (want a positive integer)"
        )),
    }
}

/// Prints `warning: {message}` to stderr unless `warned` was already set;
/// returns whether this call printed. Factored out so tests can drive a
/// local flag instead of the process-wide one.
fn warn_once_with(warned: &AtomicBool, message: &str) -> bool {
    if warned.swap(true, Ordering::Relaxed) {
        return false;
    }
    eprintln!("warning: {message}");
    true
}

/// The worker count implied by the `MIXP_WORKERS` environment variable:
/// `Some(n)` for a positive integer, `None` when unset — or invalid, in
/// which case a warning is printed **once per process** (the evaluator and
/// the scheduler historically disagreed here: one swallowed bad values
/// silently, the other warned on every call).
///
/// Callers pick their own `None` default: the evaluator falls back to `1`
/// (sequential, bit-identical to the historical evaluator), the scheduler
/// to the machine's available parallelism.
pub fn env_workers() -> Option<usize> {
    static WARNED: AtomicBool = AtomicBool::new(false);
    match std::env::var("MIXP_WORKERS") {
        Err(_) => None,
        Ok(raw) => match parse_workers(&raw) {
            Ok(n) => n,
            Err(message) => {
                warn_once_with(&WARNED, &message);
                None
            }
        },
    }
}

/// How a worker steals from a sibling's deque. Selected process-wide by the
/// `MIXP_STEAL` environment variable (`one` / `half`, default `one`) or per
/// pool via [`Pool::with_steal_policy`]. Purely a scheduling knob: batch
/// results are bit-identical under either policy.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum StealPolicy {
    /// Take the single oldest task per victim visit (classic Chase–Lev).
    #[default]
    One,
    /// Take up to half the victim's observed tasks in one visit: the thief
    /// executes the oldest and parks the rest on its own deque (overflow
    /// routes through the injector), so a busy sibling's claim-front
    /// migrates wholesale instead of trickling one task per visit.
    Half,
}

/// Parses a `MIXP_STEAL` value: `Ok(Some(policy))` for `one`/`half`
/// (case-insensitive), `Ok(None)` for unset/empty, `Err(message)` for
/// anything else. Pure — the process-wide warn-once lives in [`env_steal`].
pub fn parse_steal(raw: &str) -> Result<Option<StealPolicy>, String> {
    let trimmed = raw.trim();
    if trimmed.is_empty() {
        return Ok(None);
    }
    match trimmed.to_ascii_lowercase().as_str() {
        "one" => Ok(Some(StealPolicy::One)),
        "half" => Ok(Some(StealPolicy::Half)),
        _ => Err(format!(
            "ignoring invalid MIXP_STEAL value {raw:?} (want \"one\" or \"half\")"
        )),
    }
}

/// The steal policy implied by the `MIXP_STEAL` environment variable,
/// defaulting to [`StealPolicy::One`]; invalid values warn **once per
/// process** and fall back to the default, mirroring [`env_workers`].
pub fn env_steal() -> StealPolicy {
    static WARNED: AtomicBool = AtomicBool::new(false);
    match std::env::var("MIXP_STEAL") {
        Err(_) => StealPolicy::One,
        Ok(raw) => match parse_steal(&raw) {
            Ok(policy) => policy.unwrap_or_default(),
            Err(message) => {
                warn_once_with(&WARNED, &message);
                StealPolicy::One
            }
        },
    }
}

/// Upper bound on one half-steal visit. Deques hold batch *claimers* (at
/// most `workers - 1` per in-flight batch), so a small fixed buffer covers
/// every realistic depth without a heap allocation on the steal path.
const STEAL_BATCH_CAP: usize = 8;

/// A task pointer travelling through the injector queue. Points at a
/// caller-stack `BatchShared` kept alive by the claimer latch.
#[derive(Clone, Copy, PartialEq, Eq)]
struct TaskPtr(*const BatchShared);
// Safety: BatchShared is designed for shared cross-thread access (atomics,
// mutex, condvar; the closure is `Fn + Sync`), and the pool protocol keeps
// the pointee alive until the task is consumed.
unsafe impl Send for TaskPtr {}

struct Injector {
    queue: VecDeque<TaskPtr>,
    shutdown: bool,
}

/// A worker thread's claim on one deque slot: the slot index plus the
/// ownership epoch the thread was spawned under. A quarantine bumps the
/// slot's epoch, so the wedged thread's claim goes stale and every owner-side
/// deque operation it attempts afterwards is refused (see
/// [`PoolInner::with_ownership`]).
#[derive(Clone, Copy, PartialEq, Eq)]
struct WorkerSlot {
    index: usize,
    epoch: usize,
}

struct PoolInner {
    deques: Vec<Deque>,
    /// Per-slot ownership epoch. Chase–Lev owner operations (push/pop at
    /// the bottom) are single-owner by contract; handing a deque from a
    /// wedged worker to its replacement is only sound if the old owner can
    /// never touch it again. Owner operations therefore run under this
    /// lock with an epoch check ([`PoolInner::with_ownership`]) and
    /// [`Pool::quarantine_worker`] bumps the epoch under the same lock —
    /// after the bump, the wedged thread's next attempt is refused
    /// atomically, with no check-then-touch window. The lock is
    /// uncontended in steady state and taken once per *task claim* (not
    /// per item), so it costs nothing measurable.
    owners: Vec<Mutex<usize>>,
    injector: Mutex<Injector>,
    work_available: Condvar,
    /// External `Pool` handles; the last drop shuts the workers down.
    handles: AtomicUsize,
    /// One join slot per worker index. A quarantine *drops* the wedged
    /// thread's handle (it may never exit; joining it would hang shutdown
    /// forever) and stores the replacement's handle in its place.
    join: Mutex<Vec<Option<std::thread::JoinHandle<()>>>>,
    live: AtomicUsize,
    peak: AtomicUsize,
    steal: StealPolicy,
    obs: Obs,
}

impl PoolInner {
    /// Pushes tasks into the injector and wakes parked workers. Always
    /// called — even when every task went to a worker's own deque — because
    /// the notification must be issued under the injector lock for parked
    /// workers' recheck-then-wait to be race-free.
    fn inject_and_notify(&self, tasks: &[TaskPtr]) {
        let mut injector = lock_recovering(&self.injector);
        injector.queue.extend(tasks.iter().copied());
        self.obs
            .gauge_set("pool.injector_depth", injector.queue.len() as f64);
        drop(injector);
        self.work_available.notify_all();
    }

    /// Runs an owner-side deque operation on `slot`'s deque, refusing it
    /// (returning `None`) if the slot's ownership epoch has moved on — i.e.
    /// the calling thread was quarantined and a replacement owns the deque
    /// now. The epoch check and the operation are atomic under the slot's
    /// owner lock, so a quarantined thread can never race the replacement
    /// on the single-owner bottom of the Chase–Lev deque.
    fn with_ownership<T>(&self, slot: WorkerSlot, op: impl FnOnce(&Deque) -> T) -> Option<T> {
        let owner = lock_recovering(&self.owners[slot.index]);
        if *owner != slot.epoch {
            return None;
        }
        Some(op(&self.deques[slot.index]))
    }

    /// The current ownership epoch of a deque slot.
    fn slot_epoch(&self, index: usize) -> usize {
        *lock_recovering(&self.owners[index])
    }

    /// One task for a worker: own deque first (LIFO — finish the newest
    /// batch), then the injector (coarse work from non-worker callers),
    /// then stealing the oldest task of a sibling.
    ///
    /// `Err(())` means the worker has been quarantined — its slot belongs
    /// to a replacement now and it must exit without touching the deque.
    fn find_task(&self, slot: WorkerSlot) -> Result<Option<*const BatchShared>, ()> {
        match self.with_ownership(slot, Deque::pop) {
            None => return Err(()),
            Some(Some(task)) => return Ok(Some(task)),
            Some(None) => {}
        }
        {
            let mut injector = lock_recovering(&self.injector);
            if let Some(task) = injector.queue.pop_front() {
                self.obs
                    .gauge_set("pool.injector_depth", injector.queue.len() as f64);
                return Ok(Some(task.0));
            }
        }
        let n = self.deques.len();
        for offset in 1..n {
            let victim = (slot.index + offset) % n;
            match self.steal {
                StealPolicy::One => {
                    if let Some(task) = self.deques[victim].steal() {
                        self.obs.counter_add("pool.steals", 1);
                        return Ok(Some(task));
                    }
                }
                StealPolicy::Half => {
                    let mut buf = [std::ptr::null::<BatchShared>(); STEAL_BATCH_CAP];
                    let taken = self.deques[victim].steal_batch(&mut buf);
                    if taken > 0 {
                        self.obs.counter_add("pool.steals", taken as u64);
                        self.obs.counter_add("pool.steal_batch", 1);
                        self.park_extras(slot, &buf[1..taken]);
                        return Ok(Some(buf[0]));
                    }
                }
            }
        }
        Ok(None)
    }

    /// Parks surplus half-stolen tasks on the thief's own deque so siblings
    /// can re-steal them. Anything that does not fit — or everything, if the
    /// thief's slot was quarantined since the pop at the top of
    /// [`PoolInner::find_task`] — goes through the injector instead: a
    /// claimer, once stolen, must never be dropped.
    fn park_extras(&self, slot: WorkerSlot, extras: &[*const BatchShared]) {
        if extras.is_empty() {
            return;
        }
        let mut spill: Vec<TaskPtr> = Vec::new();
        let parked = self.with_ownership(slot, |deque| {
            for &task in extras {
                if let Err(task) = deque.push(task) {
                    spill.push(TaskPtr(task));
                }
            }
        });
        if parked.is_none() {
            spill = extras.iter().map(|&task| TaskPtr(task)).collect();
        }
        if !spill.is_empty() {
            self.inject_and_notify(&spill);
        }
    }
}

/// Ambient pool context of the current thread: set for a worker thread's
/// whole life, and temporarily for an external caller while it participates
/// in one of its own batches.
struct Ctx {
    inner: Arc<PoolInner>,
    /// `Some(slot)` on pool worker threads, `None` for participants.
    worker: Option<WorkerSlot>,
}

thread_local! {
    static CURRENT: RefCell<Option<Ctx>> = const { RefCell::new(None) };
}

/// Restores the previous ambient context when a participant leaves
/// `run_batch`.
struct ParticipantGuard {
    previous: Option<Option<Ctx>>,
}

impl ParticipantGuard {
    /// Makes `inner` the ambient pool for this thread unless it already is
    /// (worker thread, or re-entrant batch on the same pool). Returns the
    /// guard and this thread's worker slot on the pool, if any.
    fn enter(inner: &Arc<PoolInner>) -> (ParticipantGuard, Option<WorkerSlot>) {
        CURRENT.with(|current| {
            let mut slot = current.borrow_mut();
            if let Some(ctx) = slot.as_ref() {
                if Arc::ptr_eq(&ctx.inner, inner) {
                    return (ParticipantGuard { previous: None }, ctx.worker);
                }
            }
            let previous = slot.take();
            *slot = Some(Ctx {
                inner: Arc::clone(inner),
                worker: None,
            });
            (
                ParticipantGuard {
                    previous: Some(previous),
                },
                None,
            )
        })
    }
}

impl Drop for ParticipantGuard {
    fn drop(&mut self) {
        if let Some(previous) = self.previous.take() {
            CURRENT.with(|current| *current.borrow_mut() = previous);
        }
    }
}

/// A work-stealing worker pool. Cheap to clone (handles share the workers);
/// dropping the last handle shuts the workers down and joins them.
pub struct Pool {
    inner: Arc<PoolInner>,
}

impl std::fmt::Debug for Pool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pool")
            .field("parallelism", &self.parallelism())
            .finish()
    }
}

impl Pool {
    /// Creates a pool of the given parallelism, reporting through `obs`.
    ///
    /// `parallelism` counts the batch **caller** as a participant, matching
    /// the meaning of `MIXP_WORKERS`: `p` spawns `p - 1` worker threads, so
    /// a nested campaign under `MIXP_WORKERS=4` holds at most 3 pool
    /// threads plus the calling thread. `parallelism <= 1` spawns no
    /// threads at all — `run_batch` degenerates to the sequential loop.
    ///
    /// The steal policy comes from `MIXP_STEAL` (see [`env_steal`]); use
    /// [`Pool::with_steal_policy`] to pin it explicitly (tests, A/B
    /// benches) without touching process state.
    pub fn new(parallelism: usize, obs: Obs) -> Pool {
        Pool::with_steal_policy(parallelism, obs, env_steal())
    }

    /// [`Pool::new`] with an explicit [`StealPolicy`] instead of the
    /// `MIXP_STEAL` environment default.
    pub fn with_steal_policy(parallelism: usize, obs: Obs, steal: StealPolicy) -> Pool {
        let threads = parallelism.saturating_sub(1);
        let inner = Arc::new(PoolInner {
            deques: (0..threads).map(|_| Deque::new()).collect(),
            owners: (0..threads).map(|_| Mutex::new(0)).collect(),
            injector: Mutex::new(Injector {
                queue: VecDeque::new(),
                shutdown: false,
            }),
            work_available: Condvar::new(),
            handles: AtomicUsize::new(1),
            join: Mutex::new(Vec::new()),
            live: AtomicUsize::new(0),
            peak: AtomicUsize::new(0),
            steal,
            obs,
        });
        inner.obs.counter_add("pool.created", 1);
        let join = (0..threads).map(|index| spawn_worker(&inner, index, 0)).collect();
        *lock_recovering(&inner.join) = join;
        Pool { inner }
    }

    /// A pool with no observability attached.
    pub fn sized(parallelism: usize) -> Pool {
        Pool::new(parallelism, Obs::noop())
    }

    /// The pool the current thread is running on, if any: its own pool for
    /// a worker thread, the batch's pool for a thread participating in one
    /// of its own batches. This is how a nested layer (the evaluator inside
    /// a campaign job) joins the campaign's arena instead of creating a
    /// second pool.
    pub fn current() -> Option<Pool> {
        CURRENT.with(|current| {
            current.borrow().as_ref().map(|ctx| {
                ctx.inner.handles.fetch_add(1, Ordering::Relaxed);
                Pool {
                    inner: Arc::clone(&ctx.inner),
                }
            })
        })
    }

    /// The configured parallelism: worker threads plus the caller.
    pub fn parallelism(&self) -> usize {
        self.inner.deques.len() + 1
    }

    /// The steal policy this pool was built with.
    pub fn steal_policy(&self) -> StealPolicy {
        self.inner.steal
    }

    /// The worker index of the calling thread on *some* pool, if it is a
    /// pool worker (participants and external threads get `None`). The
    /// harness's watchdog records this at job registration so it knows
    /// which worker to quarantine if the job wedges.
    pub fn current_worker() -> Option<usize> {
        CURRENT.with(|current| {
            current
                .borrow()
                .as_ref()
                .and_then(|ctx| ctx.worker.map(|slot| slot.index))
        })
    }

    /// The calling thread's worker index on **this** pool, provided its
    /// deque-slot claim is still current. Participants, external threads,
    /// workers of other pools, and — crucially — quarantined (detached)
    /// workers all get `None`. The harness watchdog records this at job
    /// registration: the epoch check keeps a retry attempt that happens to
    /// still be running on a detached thread from re-registering the
    /// already-quarantined slot and triggering a second quarantine.
    pub fn active_worker(&self) -> Option<usize> {
        CURRENT.with(|current| {
            current.borrow().as_ref().and_then(|ctx| {
                if !Arc::ptr_eq(&ctx.inner, &self.inner) {
                    return None;
                }
                ctx.worker
                    .filter(|slot| self.inner.slot_epoch(slot.index) == slot.epoch)
                    .map(|slot| slot.index)
            })
        })
    }

    /// Whether the calling thread is a pool worker whose deque slot has
    /// been handed to a replacement by [`Pool::quarantine_worker`]. A
    /// `true` return means the thread no longer owns its deque and will
    /// exit its worker loop at the next iteration; long-running item code
    /// can poll this to stop cooperating early.
    pub fn detach_current(&self) -> bool {
        CURRENT.with(|current| {
            current.borrow().as_ref().is_some_and(|ctx| {
                Arc::ptr_eq(&ctx.inner, &self.inner)
                    && ctx
                        .worker
                        .is_some_and(|slot| self.inner.slot_epoch(slot.index) != slot.epoch)
            })
        })
    }

    /// Abandons a wedged worker thread and spawns a replacement that takes
    /// over its deque slot. Called by the harness watchdog after a fired
    /// cancel token and a grace period both failed to bring the worker
    /// back.
    ///
    /// The handoff is race-free: the slot's ownership epoch is bumped
    /// under the owner lock, so the wedged thread's next owner-side deque
    /// operation is refused atomically and it exits its loop ("detaches")
    /// whenever — if ever — it returns from the wedged item. Its join
    /// handle is dropped (never joined; a truly wedged thread would hang
    /// shutdown), and any in-flight batch still waits for the wedged item
    /// itself: quarantine restores the pool's *capacity*, it cannot
    /// forcibly retire work whose state lives on caller stacks.
    ///
    /// Returns `false` for an out-of-range index (e.g. a sequential pool
    /// with no workers). Reported as the `pool.quarantined` counter and a
    /// `pool.quarantine` event.
    pub fn quarantine_worker(&self, index: usize) -> bool {
        let inner = &self.inner;
        if index >= inner.deques.len() {
            return false;
        }
        let epoch = {
            let mut owner = lock_recovering(&inner.owners[index]);
            *owner += 1;
            *owner
        };
        inner.obs.counter_add("pool.quarantined", 1);
        inner.obs.event(
            "pool.quarantine",
            &[
                ("worker", Value::U64(index as u64)),
                ("epoch", Value::U64(epoch as u64)),
            ],
        );
        let replacement = spawn_worker(inner, index, epoch);
        let mut join = lock_recovering(&inner.join);
        if let Some(slot) = join.get_mut(index) {
            // Dropping the old handle detaches the wedged thread; the OS
            // reclaims it at process exit if it never wakes.
            *slot = replacement;
        }
        true
    }

    /// Runs `f(0..len)` across the pool, returning when every item has
    /// finished. The caller participates (so parallelism `p` uses `p`
    /// threads total, not `p + 1`), items are claimed dynamically, and idle
    /// workers steal from busy ones.
    ///
    /// If any item panics, the first payload is rethrown here after the
    /// batch settles — matching what `std::thread::scope` did at the two
    /// historical call sites. Effect ordering across items is unspecified;
    /// both call sites commit observable state in submission order
    /// *outside* the batch, which is what keeps results bit-identical for
    /// any worker count.
    pub fn run_batch<F: Fn(usize) + Sync>(&self, len: usize, f: F) {
        if len == 0 {
            return;
        }
        let inner = &self.inner;
        if inner.deques.is_empty() {
            // Sequential pool: no threads, no ambient context — identical
            // to the historical workers == 1 loop, panics propagate as-is.
            for index in 0..len {
                f(index);
            }
            return;
        }
        // Even a single-item batch runs under the participant context so a
        // nested layer discovers this pool instead of spawning its own.
        let (_guard, my_worker) = ParticipantGuard::enter(inner);
        if len == 1 {
            f(0);
            return;
        }

        let claimers = inner.deques.len().min(len - 1);
        let shared = BatchShared::new(&f, len, claimers);
        let task = &shared as *const BatchShared;
        inner.obs.counter_add("pool.batches", 1);
        inner.obs.observe("pool.batch_items", len as u64);

        // Enqueue claimers: a worker-caller keeps them on its own deque
        // (thieves migrate them), an external caller routes them through
        // the injector. Either way the notify goes through the injector
        // lock so parked workers cannot miss it. A worker whose slot was
        // quarantined mid-batch has lost deque ownership and falls back to
        // the injector like an external caller.
        let mut overflow = 0usize;
        let owner = my_worker.filter(|&slot| {
            inner
                .with_ownership(slot, |deque| {
                    for _ in 0..claimers {
                        if deque.push(task).is_err() {
                            overflow += 1;
                        }
                    }
                })
                .is_some()
        });
        if owner.is_none() {
            overflow = claimers;
        }
        inner.inject_and_notify(&vec![TaskPtr(task); overflow]);

        // Participate until the cursor runs dry...
        shared.run_items();

        // ...then take back the claimers nobody picked up. A worker-caller
        // pops its own deque: our claimers are the newest entries, so the
        // first foreign task marks the end of ours — push it back and stop.
        // (If ownership was lost to a quarantine replacement, the drain is
        // skipped: the replacement executes the leftover claimers, which
        // retire themselves against the exhausted cursor.)
        if let Some(slot) = owner {
            inner.with_ownership(slot, |deque| {
                while let Some(popped) = deque.pop() {
                    if popped == task {
                        shared.retire();
                    } else {
                        let _ = deque.push(popped);
                        break;
                    }
                }
            });
        } else {
            // External caller — or a quarantined worker-caller, whose
            // claimers also went through the injector above.
            let drained = {
                let mut injector = lock_recovering(&inner.injector);
                let before = injector.queue.len();
                injector.queue.retain(|queued| queued.0 != task);
                inner
                    .obs
                    .gauge_set("pool.injector_depth", injector.queue.len() as f64);
                before - injector.queue.len()
            };
            for _ in 0..drained {
                shared.retire();
            }
        }

        // Wait for claimers still held by workers (they exit promptly: the
        // cursor is exhausted once run_items above returned), then rethrow
        // any item panic in the caller, as thread::scope used to.
        shared.wait_retired();
        if let Some(payload) = shared.take_panic() {
            std::panic::resume_unwind(payload);
        }
    }
}

impl Clone for Pool {
    fn clone(&self) -> Pool {
        self.inner.handles.fetch_add(1, Ordering::Relaxed);
        Pool {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        if self.inner.handles.fetch_sub(1, Ordering::AcqRel) != 1 {
            return;
        }
        // Last handle: no batch can be in flight (run_batch callers hold a
        // handle), so the queues are empty and the workers just exit.
        {
            let mut injector = lock_recovering(&self.inner.injector);
            injector.shutdown = true;
        }
        self.inner.work_available.notify_all();
        let handles = std::mem::take(&mut *lock_recovering(&self.inner.join));
        let me = std::thread::current().id();
        for handle in handles.into_iter().flatten() {
            // Joining from a worker thread would self-deadlock; detaching
            // is safe — the worker only touches its own Arc on the way out.
            if handle.thread().id() != me {
                let _ = handle.join();
            }
        }
    }
}

/// Spawns one worker thread for `index` under ownership `epoch`, returning
/// `None` on spawn failure — degrade rather than die: the batch protocol
/// only relies on the caller itself making progress, never on worker count.
fn spawn_worker(
    inner: &Arc<PoolInner>,
    index: usize,
    epoch: usize,
) -> Option<std::thread::JoinHandle<()>> {
    let worker_inner = Arc::clone(inner);
    let spawned = std::thread::Builder::new()
        .name(format!("mixp-pool-{index}"))
        .spawn(move || worker_main(worker_inner, index, epoch));
    match spawned {
        Ok(handle) => Some(handle),
        Err(err) => {
            eprintln!(
                "warning: pool worker {index} failed to spawn ({err}); continuing with fewer workers"
            );
            None
        }
    }
}

fn worker_main(inner: Arc<PoolInner>, index: usize, epoch: usize) {
    let slot = WorkerSlot { index, epoch };
    CURRENT.with(|current| {
        *current.borrow_mut() = Some(Ctx {
            inner: Arc::clone(&inner),
            worker: Some(slot),
        });
    });
    let live = inner.live.fetch_add(1, Ordering::Relaxed) + 1;
    inner.peak.fetch_max(live, Ordering::Relaxed);
    inner.obs.gauge_set("pool.live_threads", live as f64);
    inner
        .obs
        .gauge_set("pool.peak_threads", inner.peak.load(Ordering::Relaxed) as f64);
    loop {
        match inner.find_task(slot) {
            // Quarantined: a replacement owns the deque now. Exit without
            // touching it again.
            Err(()) => break,
            Ok(Some(task)) => {
                unsafe { execute_claimer(task) };
                continue;
            }
            Ok(None) => {}
        }
        // Park. The pre-wait recheck under the injector lock pairs with
        // inject_and_notify's locked notification: any enqueue either
        // becomes visible to this recheck or its notify lands after the
        // wait starts — a wake-up cannot be missed.
        let mut injector = lock_recovering(&inner.injector);
        if !injector.queue.is_empty() || inner.deques.iter().any(Deque::has_work) {
            continue;
        }
        if injector.shutdown {
            break;
        }
        injector = inner
            .work_available
            .wait(injector)
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        drop(injector);
    }
    let live = inner.live.fetch_sub(1, Ordering::Relaxed) - 1;
    inner.obs.gauge_set("pool.live_threads", live as f64);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Barrier;

    #[test]
    fn run_batch_runs_each_index_exactly_once() {
        for parallelism in [1, 2, 4, 7] {
            let pool = Pool::sized(parallelism);
            let hits: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(0)).collect();
            pool.run_batch(hits.len(), |i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            for (i, hit) in hits.iter().enumerate() {
                assert_eq!(hit.load(Ordering::Relaxed), 1, "p={parallelism} item {i}");
            }
        }
    }

    #[test]
    fn empty_and_single_item_batches_work() {
        let pool = Pool::sized(4);
        pool.run_batch(0, |_| panic!("no items to run"));
        let ran = AtomicUsize::new(0);
        pool.run_batch(1, |i| {
            assert_eq!(i, 0);
            ran.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ran.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn batches_reuse_the_pool_across_calls() {
        let obs = Obs::in_memory();
        let pool = Pool::new(4, obs.clone());
        for _ in 0..10 {
            let total = AtomicUsize::new(0);
            pool.run_batch(16, |_| {
                total.fetch_add(1, Ordering::Relaxed);
            });
            assert_eq!(total.load(Ordering::Relaxed), 16);
        }
        let snap = obs.metrics_snapshot().expect("enabled");
        assert_eq!(snap.counters["pool.created"], 1, "one pool, many batches");
        assert_eq!(snap.counters["pool.batches"], 10);
    }

    #[test]
    fn nested_batches_share_the_arena() {
        let obs = Obs::in_memory();
        let pool = Pool::new(3, obs.clone());
        let hits: Vec<Vec<AtomicUsize>> = (0..4)
            .map(|_| (0..8).map(|_| AtomicUsize::new(0)).collect())
            .collect();
        pool.run_batch(4, |outer| {
            let ambient = Pool::current().expect("batch items see the ambient pool");
            ambient.run_batch(8, |inner| {
                hits[outer][inner].fetch_add(1, Ordering::Relaxed);
            });
        });
        for (o, row) in hits.iter().enumerate() {
            for (i, hit) in row.iter().enumerate() {
                assert_eq!(hit.load(Ordering::Relaxed), 1, "outer {o} inner {i}");
            }
        }
        let snap = obs.metrics_snapshot().expect("enabled");
        assert_eq!(
            snap.counters["pool.created"], 1,
            "nesting must not create extra pools"
        );
        // 2 spawned threads for parallelism 3, regardless of nesting depth.
        assert!(snap.gauges["pool.peak_threads"] <= 2.0);
    }

    #[test]
    fn current_is_ambient_only_inside_batches() {
        assert!(Pool::current().is_none(), "no ambient pool outside batches");
        let pool = Pool::sized(2);
        let seen = AtomicUsize::new(0);
        pool.run_batch(4, |_| {
            if Pool::current().is_some() {
                seen.fetch_add(1, Ordering::Relaxed);
            }
        });
        assert_eq!(seen.load(Ordering::Relaxed), 4);
        assert!(Pool::current().is_none(), "participant context is restored");
    }

    #[test]
    fn item_panic_propagates_with_its_payload_and_pool_survives() {
        let pool = Pool::sized(3);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run_batch(8, |i| {
                if i == 3 {
                    panic!("injected fault at {i}");
                }
            });
        }));
        let payload = caught.expect_err("panic must reach the caller");
        let message = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(message.contains("injected fault"), "payload: {message:?}");
        // The pool is still functional afterwards.
        let total = AtomicUsize::new(0);
        pool.run_batch(5, |_| {
            total.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(total.load(Ordering::Relaxed), 5);
    }

    #[test]
    fn caller_and_worker_run_items_concurrently() {
        // Barrier(2) can only be passed if two distinct threads hold the
        // batch's two items at once: the caller plus the one pool worker.
        let pool = Pool::sized(2);
        let barrier = Barrier::new(2);
        pool.run_batch(2, |_| {
            barrier.wait();
        });
    }

    #[test]
    fn worker_threads_are_joined_on_last_drop() {
        let obs = Obs::in_memory();
        let pool = Pool::new(4, obs.clone());
        pool.run_batch(8, |_| {});
        let clone = pool.clone();
        drop(pool);
        drop(clone);
        let snap = obs.metrics_snapshot().expect("enabled");
        assert_eq!(snap.gauges["pool.live_threads"], 0.0, "workers exited");
        assert!(snap.gauges["pool.peak_threads"] <= 3.0, "p=4 spawns 3");
    }

    #[test]
    fn quarantine_hands_a_wedged_workers_deque_to_a_replacement() {
        let obs = Obs::in_memory();
        let pool = Pool::new(2, obs.clone());
        let wedged = AtomicBool::new(false);
        let barrier = Barrier::new(2);
        pool.run_batch(2, |_| {
            // The barrier guarantees one item runs on the worker thread and
            // one on the caller; roles are picked by thread, not by index.
            barrier.wait();
            if Pool::current_worker().is_some() {
                // Worker role: wedge until the quarantine hands our slot
                // away — detach_current flipping is the release signal.
                wedged.store(true, Ordering::Release);
                while !pool.detach_current() {
                    std::thread::yield_now();
                }
            } else {
                // Caller role: wait for the wedge, then quarantine it.
                while !wedged.load(Ordering::Acquire) {
                    std::thread::yield_now();
                }
                assert!(pool.quarantine_worker(0));
            }
        });
        // The replacement owns deque 0 now; the pool keeps working.
        let total = AtomicUsize::new(0);
        pool.run_batch(8, |_| {
            total.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(total.load(Ordering::Relaxed), 8);
        drop(pool);
        // The quarantined worker exits on its own schedule (it is detached,
        // not joined); give it a moment before reading the final gauges.
        let mut snap = obs.metrics_snapshot().expect("enabled");
        for _ in 0..2000 {
            if snap.gauges["pool.live_threads"] == 0.0 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
            snap = obs.metrics_snapshot().expect("enabled");
        }
        assert_eq!(snap.counters["pool.quarantined"], 1);
        assert!(
            snap.gauges["pool.peak_threads"] <= 2.0,
            "1 configured worker + 1 quarantine replacement, got {}",
            snap.gauges["pool.peak_threads"]
        );
        assert_eq!(snap.gauges["pool.live_threads"], 0.0, "all workers exited");
    }

    #[test]
    fn active_worker_is_pool_scoped_and_epoch_checked() {
        let pool = Pool::sized(2);
        assert!(pool.active_worker().is_none(), "external threads are not workers");
        let other = Pool::sized(2);
        let worker_saw = AtomicUsize::new(usize::MAX);
        let barrier = Barrier::new(2);
        pool.run_batch(2, |_| {
            barrier.wait();
            if let Some(index) = pool.active_worker() {
                assert!(other.active_worker().is_none(), "wrong pool must not match");
                worker_saw.store(index, Ordering::Relaxed);
            } else {
                // Caller role: a participant, not a worker.
                assert!(Pool::current().is_some());
            }
        });
        assert_eq!(worker_saw.load(Ordering::Relaxed), 0, "one worker, slot 0");
        // After a quarantine bumps the epoch, a hypothetical stale thread's
        // claim would be refused; simulate by checking the epoch moved.
        assert!(pool.quarantine_worker(0));
        assert_eq!(pool.inner.slot_epoch(0), 1);
    }

    #[test]
    fn quarantine_out_of_range_is_refused() {
        let pool = Pool::sized(1);
        assert!(!pool.quarantine_worker(0), "sequential pool has no workers");
    }

    #[test]
    fn detach_current_is_false_off_pool_and_for_healthy_workers() {
        let pool = Pool::sized(2);
        assert!(!pool.detach_current(), "external threads never detach");
        let saw_detach = AtomicUsize::new(0);
        pool.run_batch(4, |_| {
            if pool.detach_current() {
                saw_detach.fetch_add(1, Ordering::Relaxed);
            }
        });
        assert_eq!(saw_detach.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn parse_workers_accepts_positive_integers_only() {
        assert_eq!(parse_workers("4"), Ok(Some(4)));
        assert_eq!(parse_workers("  7 "), Ok(Some(7)));
        assert_eq!(parse_workers(""), Ok(None));
        assert_eq!(parse_workers("   "), Ok(None));
        for bad in ["0", "-3", "four", "4.5", "1e2"] {
            let err = parse_workers(bad).expect_err(bad);
            assert!(err.contains("MIXP_WORKERS"), "{err}");
            assert!(err.contains(bad), "{err}");
        }
    }

    #[test]
    fn warn_once_prints_exactly_once_per_flag() {
        let flag = AtomicBool::new(false);
        assert!(warn_once_with(&flag, "first"));
        assert!(!warn_once_with(&flag, "second"));
        assert!(!warn_once_with(&flag, "third"));
    }

    // The env-reading tests mutate process-global variables: they serialise
    // on one mutex and restore the prior value. Pool-construction tests do
    // read MIXP_STEAL (via Pool::new), but any value they might observe
    // mid-mutation only selects a scheduling policy, never an outcome.
    fn with_env<T>(name: &str, value: Option<&str>, run: impl FnOnce() -> T) -> T {
        static ENV_LOCK: Mutex<()> = Mutex::new(());
        let _guard = lock_recovering(&ENV_LOCK);
        let previous = std::env::var(name).ok();
        match value {
            Some(v) => std::env::set_var(name, v),
            None => std::env::remove_var(name),
        }
        let result = run();
        match previous {
            Some(v) => std::env::set_var(name, v),
            None => std::env::remove_var(name),
        }
        result
    }

    #[test]
    fn env_workers_reads_parses_and_falls_back() {
        let var = "MIXP_WORKERS";
        with_env(var, None, || assert_eq!(env_workers(), None));
        with_env(var, Some("6"), || assert_eq!(env_workers(), Some(6)));
        // Invalid values fall back to None (the warning is printed at most
        // once per process; warn_once_prints_exactly_once_per_flag covers
        // the once-ness deterministically).
        with_env(var, Some("banana"), || assert_eq!(env_workers(), None));
        with_env(var, Some("0"), || assert_eq!(env_workers(), None));
    }

    #[test]
    fn parse_steal_accepts_one_and_half_only() {
        assert_eq!(parse_steal("one"), Ok(Some(StealPolicy::One)));
        assert_eq!(parse_steal(" HALF "), Ok(Some(StealPolicy::Half)));
        assert_eq!(parse_steal(""), Ok(None));
        assert_eq!(parse_steal("   "), Ok(None));
        for bad in ["two", "0.5", "halff", "all"] {
            let err = parse_steal(bad).expect_err(bad);
            assert!(err.contains("MIXP_STEAL"), "{err}");
            assert!(err.contains(bad), "{err}");
        }
    }

    #[test]
    fn env_steal_reads_parses_and_falls_back() {
        let var = "MIXP_STEAL";
        with_env(var, None, || assert_eq!(env_steal(), StealPolicy::One));
        with_env(var, Some("half"), || {
            assert_eq!(env_steal(), StealPolicy::Half);
            let pool = Pool::sized(2);
            assert_eq!(pool.steal_policy(), StealPolicy::Half, "Pool::new honours the knob");
        });
        with_env(var, Some("nonsense"), || assert_eq!(env_steal(), StealPolicy::One));
    }

    #[test]
    fn half_steal_pool_runs_every_index_exactly_once() {
        let obs = Obs::in_memory();
        let pool = Pool::with_steal_policy(4, obs.clone(), StealPolicy::Half);
        assert_eq!(pool.steal_policy(), StealPolicy::Half);
        // Many small batches — the DD frontier shape half-stealing targets.
        for _ in 0..50 {
            let hits: Vec<AtomicUsize> = (0..12).map(|_| AtomicUsize::new(0)).collect();
            pool.run_batch(hits.len(), |i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            for (i, hit) in hits.iter().enumerate() {
                assert_eq!(hit.load(Ordering::Relaxed), 1, "item {i}");
            }
        }
        // Steal traffic is schedule-dependent, but whenever a half-steal
        // happened the task counter must cover at least one task per visit.
        let snap = obs.metrics_snapshot().expect("enabled");
        let visits = snap.counters.get("pool.steal_batch").copied().unwrap_or(0);
        let tasks = snap.counters.get("pool.steals").copied().unwrap_or(0);
        assert!(tasks >= visits, "steals {tasks} >= batch visits {visits}");
    }

    #[test]
    fn nested_batches_work_under_half_stealing() {
        let pool = Pool::with_steal_policy(3, Obs::noop(), StealPolicy::Half);
        let hits: Vec<Vec<AtomicUsize>> = (0..4)
            .map(|_| (0..8).map(|_| AtomicUsize::new(0)).collect())
            .collect();
        pool.run_batch(4, |outer| {
            let ambient = Pool::current().expect("ambient pool visible");
            ambient.run_batch(8, |inner| {
                hits[outer][inner].fetch_add(1, Ordering::Relaxed);
            });
        });
        for (o, row) in hits.iter().enumerate() {
            for (i, hit) in row.iter().enumerate() {
                assert_eq!(hit.load(Ordering::Relaxed), 1, "outer {o} inner {i}");
            }
        }
    }
}
