//! The HPC-MixPBench runtime library: precision-agnostic allocation and
//! binary I/O.
//!
//! Source-level mixed-precision tools can retype variables but cannot retype
//! the *world*: binary input files keep whatever element width they were
//! written with, and `malloc(n * sizeof(double))` bakes the width into the
//! allocation size. The paper's runtime library solves this with
//! `mp_malloc`, `mp_fread` and `mp_fwrite` variants that convert between the
//! file's declared element type and the variable's configured storage type
//! (§III-A.a, Listings 2–3).
//!
//! This crate is the Rust analogue:
//!
//! * [`mp_fwrite`] writes `f64` values at a *declared* precision,
//! * [`mp_fread`] reads values of a declared precision back as `f64`,
//! * [`mp_read_vec`] is the `mp_malloc` + `mp_fread` combination: it
//!   allocates an [`MpVec`] whose storage follows the active
//!   [`PrecisionConfig`] and fills it from a stream of any declared
//!   precision, converting as needed,
//! * [`mp_write_vec`] writes an [`MpVec`]'s contents out at a declared
//!   precision regardless of its configured storage.
//!
//! [`MpVec`]: mixp_float::MpVec
//! [`PrecisionConfig`]: mixp_float::PrecisionConfig
//!
//! # Example
//!
//! ```
//! use std::io::Cursor;
//! use mixp_float::{ExecCtx, Precision, PrecisionConfig, VarRegistry};
//! use mixp_runtime::{mp_fwrite, mp_read_vec};
//!
//! # fn main() -> std::io::Result<()> {
//! // A data file written in double precision...
//! let mut file = Vec::new();
//! mp_fwrite(&mut file, Precision::Double, &[0.1, 0.2])?;
//!
//! // ...loaded into a variable configured *single*: the library converts.
//! let mut reg = VarRegistry::new();
//! let ptr = reg.fresh("ptr");
//! let cfg = PrecisionConfig::all_single(reg.len());
//! let mut ctx = ExecCtx::new(&cfg);
//! let v = mp_read_vec(&mut ctx, ptr, &mut Cursor::new(file), Precision::Double, 2)?;
//! assert_eq!(v.peek(0), 0.1f32 as f64);
//! # Ok(())
//! # }
//! ```

use mixp_float::{ExecCtx, MpVec, Precision, VarId};
use std::io::{self, Read, Write};

/// Writes `values` to `w` at the declared element precision, little-endian.
///
/// The declared precision describes the *file format*, independent of how
/// the in-memory variable is configured — exactly like the `DOUBLE` tag in
/// the paper's `mp_fwrite(ptr, DOUBLE, elements, fd)`.
///
/// # Errors
///
/// Propagates any I/O error from `w`.
pub fn mp_fwrite<W: Write>(mut w: W, declared: Precision, values: &[f64]) -> io::Result<()> {
    match declared {
        Precision::Double => {
            for &v in values {
                w.write_all(&v.to_le_bytes())?;
            }
        }
        Precision::Single => {
            for &v in values {
                w.write_all(&(v as f32).to_le_bytes())?;
            }
        }
        Precision::Half => {
            for &v in values {
                w.write_all(&mixp_float::half::f16_bits_from_f64(v).to_le_bytes())?;
            }
        }
    }
    Ok(())
}

/// Reads `count` elements of the declared precision from `r`, returning them
/// widened to `f64`.
///
/// # Errors
///
/// Returns an error if `r` ends before `count` elements are read, or on any
/// underlying I/O error.
pub fn mp_fread<R: Read>(mut r: R, declared: Precision, count: usize) -> io::Result<Vec<f64>> {
    let mut out = Vec::with_capacity(count);
    match declared {
        Precision::Double => {
            let mut buf = [0u8; 8];
            for _ in 0..count {
                r.read_exact(&mut buf)?;
                out.push(f64::from_le_bytes(buf));
            }
        }
        Precision::Single => {
            let mut buf = [0u8; 4];
            for _ in 0..count {
                r.read_exact(&mut buf)?;
                out.push(f32::from_le_bytes(buf) as f64);
            }
        }
        Precision::Half => {
            let mut buf = [0u8; 2];
            for _ in 0..count {
                r.read_exact(&mut buf)?;
                out.push(mixp_float::half::f64_from_f16_bits(u16::from_le_bytes(buf)));
            }
        }
    }
    Ok(out)
}

/// The `mp_malloc` + `mp_fread` combination: allocates storage for `var`
/// at its *configured* precision and fills it from a stream of `declared`
/// precision, converting transparently.
///
/// # Errors
///
/// Propagates I/O errors from `r` (including short reads).
pub fn mp_read_vec<R: Read>(
    ctx: &mut ExecCtx<'_>,
    var: VarId,
    r: R,
    declared: Precision,
    count: usize,
) -> io::Result<MpVec> {
    let values = mp_fread(r, declared, count)?;
    Ok(MpVec::from_values(ctx, var, &values))
}

/// Writes the contents of `vec` to `w` at the declared precision,
/// regardless of the vector's configured storage precision.
///
/// # Errors
///
/// Propagates any I/O error from `w`.
pub fn mp_write_vec<W: Write>(w: W, declared: Precision, vec: &MpVec) -> io::Result<()> {
    mp_fwrite(w, declared, &vec.snapshot())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mixp_float::{PrecisionConfig, VarRegistry};
    use std::io::Cursor;

    #[test]
    fn double_round_trip_is_exact() {
        let values = [0.1, -2.5, 1.0e300, f64::MIN_POSITIVE];
        let mut buf = Vec::new();
        mp_fwrite(&mut buf, Precision::Double, &values).unwrap();
        assert_eq!(buf.len(), 32);
        let back = mp_fread(Cursor::new(buf), Precision::Double, 4).unwrap();
        assert_eq!(back, values);
    }

    #[test]
    fn single_file_rounds_on_write() {
        let mut buf = Vec::new();
        mp_fwrite(&mut buf, Precision::Single, &[0.1]).unwrap();
        assert_eq!(buf.len(), 4);
        let back = mp_fread(Cursor::new(buf), Precision::Single, 1).unwrap();
        assert_eq!(back[0], 0.1f32 as f64);
    }

    #[test]
    fn short_read_errors() {
        let buf = vec![0u8; 12]; // 1.5 doubles
        let err = mp_fread(Cursor::new(buf), Precision::Double, 2).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn read_vec_converts_double_file_into_single_storage() {
        let mut file = Vec::new();
        mp_fwrite(&mut file, Precision::Double, &[0.1, 0.2, 0.3]).unwrap();
        let mut reg = VarRegistry::new();
        let v = reg.fresh("ptr");
        let cfg = PrecisionConfig::all_single(reg.len());
        let mut ctx = ExecCtx::new(&cfg);
        let vec = mp_read_vec(&mut ctx, v, Cursor::new(file), Precision::Double, 3).unwrap();
        for (i, want) in [0.1f32, 0.2, 0.3].iter().enumerate() {
            assert_eq!(vec.peek(i), *want as f64);
        }
    }

    #[test]
    fn read_vec_keeps_double_storage_exact() {
        let mut file = Vec::new();
        mp_fwrite(&mut file, Precision::Double, &[0.1]).unwrap();
        let mut reg = VarRegistry::new();
        let v = reg.fresh("ptr");
        let cfg = PrecisionConfig::all_double(reg.len());
        let mut ctx = ExecCtx::new(&cfg);
        let vec = mp_read_vec(&mut ctx, v, Cursor::new(file), Precision::Double, 1).unwrap();
        assert_eq!(vec.peek(0), 0.1);
    }

    #[test]
    fn write_vec_declares_output_format() {
        let mut reg = VarRegistry::new();
        let v = reg.fresh("out");
        let cfg = PrecisionConfig::all_single(reg.len());
        let mut ctx = ExecCtx::new(&cfg);
        let mut vec = ctx.alloc_vec(v, 2);
        vec.set(&mut ctx, 0, 0.1);
        vec.set(&mut ctx, 1, 0.2);
        // Output file declared double: 16 bytes, values are the rounded ones.
        let mut out = Vec::new();
        mp_write_vec(&mut out, Precision::Double, &vec).unwrap();
        assert_eq!(out.len(), 16);
        let back = mp_fread(Cursor::new(out), Precision::Double, 2).unwrap();
        assert_eq!(back[0], 0.1f32 as f64);
    }

    #[test]
    fn file_round_trip_on_disk() {
        let dir = std::env::temp_dir().join("mixp_runtime_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("data.bin");
        let values: Vec<f64> = (0..100).map(|i| i as f64 * 0.25).collect();
        mp_fwrite(
            std::fs::File::create(&path).unwrap(),
            Precision::Double,
            &values,
        )
        .unwrap();
        let back = mp_fread(std::fs::File::open(&path).unwrap(), Precision::Double, 100).unwrap();
        assert_eq!(back, values);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn half_file_round_trips() {
        let mut buf = Vec::new();
        mp_fwrite(&mut buf, Precision::Half, &[0.1, 1.0, 65504.0]).unwrap();
        assert_eq!(buf.len(), 6);
        let back = mp_fread(Cursor::new(buf), Precision::Half, 3).unwrap();
        assert_eq!(back[0], 0.0999755859375);
        assert_eq!(back[1], 1.0);
        assert_eq!(back[2], 65504.0);
    }

    #[test]
    fn non_finite_values_round_trip() {
        let values = [f64::INFINITY, f64::NEG_INFINITY, f64::NAN];
        let mut buf = Vec::new();
        mp_fwrite(&mut buf, Precision::Single, &values).unwrap();
        let back = mp_fread(Cursor::new(buf), Precision::Single, 3).unwrap();
        assert!(back[0].is_infinite() && back[0] > 0.0);
        assert!(back[1].is_infinite() && back[1] < 0.0);
        assert!(back[2].is_nan());
    }
}
