//! Combinational (brute-force) search.

use crate::{batch_passes, enumeration_width, finish, SearchAlgorithm, SearchResult};
use mixp_core::{Evaluator, Granularity, PrecisionConfig, Value};

/// Combinational search (CB): try *all* combinations of clusters — the
/// exhaustive approach (§II-B).
///
/// Only feasible on small search spaces; the paper applies it to the kernels
/// (1–2 clusters) to establish the optimum every other algorithm is compared
/// against. On larger spaces the budget runs out and the search reports DNF.
///
/// Subsets are enumerated largest-first (most lowered variables first), so
/// the "everything single" candidate — usually the best when it passes — is
/// tried immediately.
#[derive(Debug, Clone, Copy, Default)]
pub struct Combinational;

impl Combinational {
    /// Creates the algorithm.
    pub fn new() -> Self {
        Combinational
    }
}

impl SearchAlgorithm for Combinational {
    fn name(&self) -> &str {
        "CB"
    }

    fn full_name(&self) -> &str {
        "combinational"
    }

    fn search(&self, ev: &mut Evaluator<'_>) -> SearchResult {
        let obs = ev.obs();
        let space = ev.space(Granularity::Clusters);
        let n = space.len();
        if n == 0 {
            return finish(ev, false);
        }
        // Beyond 2^24 subsets the enumeration itself is hopeless; charge the
        // budget by evaluating what we can, then report DNF like the paper's
        // timed-out runs.
        let width = enumeration_width(ev);
        if n >= 24 {
            let _sweep = obs.span(
                "cb.sweep",
                &[
                    ("clusters", Value::U64(n as u64)),
                    ("exhaustive", Value::Bool(false)),
                ],
            );
            let program = ev.program().clone();
            // Evaluate single-cluster configs until the budget runs out,
            // fanning each chunk across the evaluator's workers.
            let cfgs: Vec<PrecisionConfig> =
                (0..n).map(|u| space.config(&program, [u])).collect();
            for chunk in cfgs.chunks(width) {
                if batch_passes(ev, chunk).is_err() {
                    break;
                }
            }
            return finish(ev, true);
        }
        let program = ev.program().clone();
        let total: u64 = 1 << n;
        let _sweep = obs.span(
            "cb.sweep",
            &[
                ("clusters", Value::U64(n as u64)),
                ("subsets", Value::U64(total - 1)),
            ],
        );
        // Largest subsets first: sort masks by descending popcount.
        let mut masks: Vec<u64> = (1..total).collect();
        masks.sort_by_key(|m| std::cmp::Reverse(m.count_ones()));
        // Enumeration chunks are the search's natural frontier: no member
        // depends on another, so fan-out is sequence-identical.
        for group in masks.chunks(width) {
            let _chunk = obs.span("cb.chunk", &[("masks", Value::U64(group.len() as u64))]);
            let cfgs: Vec<PrecisionConfig> = group
                .iter()
                .map(|&mask| {
                    let lowered = (0..n).filter(move |i| mask >> i & 1 == 1);
                    space.config(&program, lowered)
                })
                .collect();
            if batch_passes(ev, &cfgs).is_err() {
                return finish(ev, true);
            }
        }
        finish(ev, false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mixp_core::Benchmark;
    use mixp_core::{EvaluatorBuilder, QualityThreshold};
    use mixp_kernels::{Eos, Tridiag};

    #[test]
    fn single_cluster_kernel_needs_one_evaluation() {
        let k = Tridiag::small();
        let mut ev = Evaluator::new(&k, QualityThreshold::new(1e-3));
        let r = Combinational::new().search(&mut ev);
        assert!(!r.dnf);
        assert_eq!(r.evaluated, 1);
        assert!(r.best.is_some());
    }

    #[test]
    fn two_cluster_kernel_enumerates_all_subsets() {
        let k = Eos::small();
        let mut ev = Evaluator::new(&k, QualityThreshold::new(1e-3));
        let r = Combinational::new().search(&mut ev);
        assert!(!r.dnf);
        assert_eq!(r.evaluated, 3); // {c0}, {c1}, {c0,c1}
    }

    #[test]
    fn exhausted_budget_reports_dnf() {
        let k = Eos::small();
        let mut ev = EvaluatorBuilder::new(QualityThreshold::new(1e-3))
            .budget(2)
            .build(&k);
        let r = Combinational::new().search(&mut ev);
        assert!(r.dnf);
        assert_eq!(r.evaluated, 2);
    }

    #[test]
    fn best_is_at_least_as_fast_as_all_single() {
        let k = Eos::small();
        let mut ev = Evaluator::new(&k, QualityThreshold::new(1e-3));
        let all_single = ev
            .evaluate(&k.program().config_all_single())
            .unwrap()
            .speedup;
        let r = Combinational::new().search(&mut ev);
        assert!(r.best.unwrap().speedup >= all_single - 1e-12);
    }
}
