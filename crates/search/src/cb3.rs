//! Multi-level (p = 3) exhaustive search.

use crate::{batch_passes, enumeration_width, finish, SearchAlgorithm, SearchResult};
use mixp_core::{Evaluator, Precision, PrecisionConfig, Value};

/// Multi-precision exhaustive search (CB3): enumerates every assignment of
/// a precision *level* — half, single or double — to every cluster.
///
/// The paper frames the general search space as `p^loc` for an architecture
/// with `p` precision levels ("p = 3 for an architecture that supports
/// half, single, and double precision" — §II) but evaluates two levels.
/// This reproduction supports the third level end-to-end (binary16 storage
/// emulation, cost model, runtime I/O), and CB3 is the exhaustive baseline
/// over that space, feasible on the kernels' 1–2 cluster models where
/// `3^TC ≤ 9`.
#[derive(Debug, Clone, Copy, Default)]
pub struct MultiPrecisionExhaustive;

impl MultiPrecisionExhaustive {
    /// Creates the algorithm.
    pub fn new() -> Self {
        MultiPrecisionExhaustive
    }

    /// The levels enumerated, narrowest first.
    pub const LEVELS: [Precision; 3] = [Precision::Half, Precision::Single, Precision::Double];
}

impl SearchAlgorithm for MultiPrecisionExhaustive {
    fn name(&self) -> &str {
        "CB3"
    }

    fn full_name(&self) -> &str {
        "multi-precision exhaustive"
    }

    fn search(&self, ev: &mut Evaluator<'_>) -> SearchResult {
        let program = ev.program().clone();
        let n = program.total_clusters();
        if n == 0 {
            return finish(ev, false);
        }
        if n > 15 {
            // 3^16 > 43M assignments: hopeless, like CB beyond 2^24.
            return finish(ev, true);
        }
        let total: u64 = 3u64.pow(n as u32);
        let width = enumeration_width(ev);
        let _sweep = ev.obs().span(
            "cb3.sweep",
            &[
                ("clusters", Value::U64(n as u64)),
                ("assignments", Value::U64(total)),
            ],
        );
        let mut levels = vec![Precision::Double; n];
        let mut codes = 0..total;
        // Chunked enumeration: decode `width` assignments, fan them out,
        // repeat. No early exit between assignments, so any chunking is
        // sequence-identical to the historical per-code loop.
        loop {
            let cfgs: Vec<PrecisionConfig> = codes
                .by_ref()
                .take(width)
                .map(|mut code| {
                    for slot in levels.iter_mut() {
                        *slot = Self::LEVELS[(code % 3) as usize];
                        code /= 3;
                    }
                    program.config_from_cluster_levels(&levels)
                })
                .collect();
            if cfgs.is_empty() {
                break;
            }
            let _chunk = ev
                .obs()
                .span("cb3.chunk", &[("assignments", Value::U64(cfgs.len() as u64))]);
            if batch_passes(ev, &cfgs).is_err() {
                return finish(ev, true);
            }
        }
        finish(ev, false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mixp_core::{Benchmark, QualityThreshold};
    use mixp_kernels::{Eos, Tridiag};

    #[test]
    fn enumerates_the_full_three_level_space() {
        let k = Eos::small(); // TC = 2
        let mut ev = Evaluator::new(&k, QualityThreshold::new(1e-3));
        let r = MultiPrecisionExhaustive::new().search(&mut ev);
        assert!(!r.dnf);
        // 3^2 = 9 assignments, one of which is all-double (evaluated but
        // never "best").
        assert_eq!(r.evaluated, 9);
    }

    #[test]
    fn finds_at_least_the_two_level_optimum() {
        let k = Tridiag::small();
        let mut ev3 = Evaluator::new(&k, QualityThreshold::new(1e-3));
        let r3 = MultiPrecisionExhaustive::new().search(&mut ev3);
        let mut ev2 = Evaluator::new(&k, QualityThreshold::new(1e-3));
        let r2 = crate::Combinational::new().search(&mut ev2);
        let s3 = r3.speedup().unwrap_or(0.0);
        let s2 = r2.speedup().unwrap_or(0.0);
        assert!(s3 >= s2, "three levels subsume two: {s3} vs {s2}");
    }

    #[test]
    fn half_configurations_really_run() {
        // The all-half configuration of a kernel is part of the space and
        // produces a larger error than all-single.
        let k = Tridiag::small();
        let program = k.program();
        let n = program.total_clusters();
        let all_half = program.config_from_cluster_levels(&vec![Precision::Half; n]);
        let all_single = program.config_all_single();
        let mut ev = Evaluator::new(&k, QualityThreshold::new(1.0));
        let rh = ev.evaluate(&all_half).unwrap();
        let rs = ev.evaluate(&all_single).unwrap();
        assert!(rh.compiled && rs.compiled);
        assert!(
            rh.quality > rs.quality,
            "half must round harder: {} vs {}",
            rh.quality,
            rs.quality
        );
        assert!(rh.speedup > rs.speedup, "and be cheaper to execute");
    }
}
