//! Compositional search.

use crate::{batch_passes, finish, SearchAlgorithm, SearchResult};
use mixp_core::{Evaluator, Granularity, PrecisionConfig, Value};
use std::collections::BTreeSet;

/// Compositional search (CM): replace each cluster individually, then
/// repeatedly combine passing configurations until no compositions are left
/// (§II-B).
///
/// The closure over compositions makes this strategy "as slow as the
/// combinational strategy when many variables can be replaced" — on
/// cluster-rich applications (Blackscholes has 50) it exhausts its budget
/// and reports DNF, reproducing the grey boxes of Table V.
#[derive(Debug, Clone, Copy, Default)]
pub struct Compositional;

impl Compositional {
    /// Creates the algorithm.
    pub fn new() -> Self {
        Compositional
    }
}

impl SearchAlgorithm for Compositional {
    fn name(&self) -> &str {
        "CM"
    }

    fn full_name(&self) -> &str {
        "compositional"
    }

    fn search(&self, ev: &mut Evaluator<'_>) -> SearchResult {
        let space = ev.space(Granularity::Clusters);
        let program = ev.program().clone();
        let n = space.len();
        if n == 0 {
            return finish(ev, false);
        }

        let obs = ev.obs();

        // Phase 1: every unit individually — one independent batch, since
        // no trial depends on another's outcome.
        let units = obs.span("cm.units", &[("units", Value::U64(n as u64))]);
        let unit_cfgs: Vec<PrecisionConfig> =
            (0..n).map(|u| space.config(&program, [u])).collect();
        let mut passing: Vec<BTreeSet<usize>> = Vec::new();
        match batch_passes(ev, &unit_cfgs) {
            Ok(flags) => {
                for (u, passed) in flags.into_iter().enumerate() {
                    if passed {
                        passing.push(BTreeSet::from([u]));
                    }
                }
            }
            Err(_) => return finish(ev, true),
        }
        units.end_with(&[("passing", Value::U64(passing.len() as u64))]);

        // Phase 2: compose pairs of passing sets (unions) until closure.
        // `seen` caps re-deriving identical unions. Each wave's candidate
        // list depends only on the previous wave (`passing` is extended
        // after the wave), so the whole wave is one independent batch.
        let mut seen: BTreeSet<BTreeSet<usize>> = passing.iter().cloned().collect();
        let mut frontier = passing.clone();
        while !frontier.is_empty() {
            let mut candidates: Vec<BTreeSet<usize>> = Vec::new();
            for f in &frontier {
                for p in &passing {
                    let union: BTreeSet<usize> = f.union(p).copied().collect();
                    if union.len() == f.len() || seen.contains(&union) {
                        continue;
                    }
                    seen.insert(union.clone());
                    candidates.push(union);
                }
            }
            let _wave = obs.span(
                "cm.wave",
                &[("candidates", Value::U64(candidates.len() as u64))],
            );
            let cfgs: Vec<PrecisionConfig> = candidates
                .iter()
                .map(|u| space.config(&program, u.iter().copied()))
                .collect();
            let flags = match batch_passes(ev, &cfgs) {
                Ok(f) => f,
                Err(_) => return finish(ev, true),
            };
            let next: Vec<BTreeSet<usize>> = candidates
                .into_iter()
                .zip(flags)
                .filter_map(|(u, passed)| passed.then_some(u))
                .collect();
            passing.extend(next.iter().cloned());
            frontier = next;
        }
        finish(ev, false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mixp_core::{EvaluatorBuilder, QualityThreshold};
    use mixp_kernels::{Eos, Hydro1d, Tridiag};

    #[test]
    fn single_cluster_kernel_is_one_evaluation() {
        let k = Tridiag::small();
        let mut ev = Evaluator::new(&k, QualityThreshold::new(1e-3));
        let r = Compositional::new().search(&mut ev);
        assert!(!r.dnf);
        assert_eq!(r.evaluated, 1);
        assert!(r.best.is_some());
    }

    #[test]
    fn two_clusters_compose_when_both_pass() {
        let k = Eos::small();
        let mut ev = Evaluator::new(&k, QualityThreshold::new(1e-3));
        let r = Compositional::new().search(&mut ev);
        assert!(!r.dnf);
        // 2 singles + 1 composition.
        assert_eq!(r.evaluated, 3);
    }

    #[test]
    fn finds_a_passing_configuration() {
        let k = Hydro1d::small();
        let mut ev = Evaluator::new(&k, QualityThreshold::new(1e-3));
        let r = Compositional::new().search(&mut ev);
        assert!(r.best.is_some());
        assert!(r.best.unwrap().passes);
    }

    #[test]
    fn tiny_budget_dnfs() {
        let k = Eos::small();
        let mut ev = EvaluatorBuilder::new(QualityThreshold::new(1e-3))
            .budget(1)
            .build(&k);
        let r = Compositional::new().search(&mut ev);
        assert!(r.dnf);
    }
}
