//! Delta-debugging search.

use crate::{finish, first_passing, SearchAlgorithm, SearchResult};
use mixp_core::{Evaluator, Granularity, PrecisionConfig, Value};
use std::collections::BTreeSet;

/// Delta-debugging search (DD): a modified binary search over the cluster
/// list, after Precimonious (§II-B).
///
/// The search looks for the *minimal set of clusters that must stay in
/// double precision* for verification to pass — equivalently, the maximal
/// set that can be lowered. It starts from "lower everything"; if that
/// passes, it terminates immediately (1 evaluation — the common case for
/// the kernels at loose thresholds). Otherwise it runs the classic ddmin
/// subset/complement refinement until it reaches a local minimum in which
/// no tested chunk can be moved back to single precision.
///
/// As the quality threshold tightens, more candidate configurations fail
/// and the refinement explores many more configurations — the behaviour
/// Figure 2a of the paper reports.
#[derive(Debug, Clone, Copy, Default)]
pub struct DeltaDebug;

impl DeltaDebug {
    /// Creates the algorithm.
    pub fn new() -> Self {
        DeltaDebug
    }
}

/// Splits `set` into `n` chunks of near-equal size.
fn split(set: &BTreeSet<usize>, n: usize) -> Vec<BTreeSet<usize>> {
    let items: Vec<usize> = set.iter().copied().collect();
    let mut chunks = Vec::with_capacity(n);
    let len = items.len();
    let base = len / n;
    let extra = len % n;
    let mut start = 0;
    for i in 0..n {
        let sz = base + usize::from(i < extra);
        if sz == 0 {
            continue;
        }
        chunks.push(items[start..start + sz].iter().copied().collect());
        start += sz;
    }
    chunks
}

impl SearchAlgorithm for DeltaDebug {
    fn name(&self) -> &str {
        "DD"
    }

    fn full_name(&self) -> &str {
        "delta-debugging"
    }

    fn search(&self, ev: &mut Evaluator<'_>) -> SearchResult {
        let space = ev.space(Granularity::Clusters);
        let program = ev.program().clone();
        let total = space.len();
        if total == 0 {
            return finish(ev, false);
        }
        let universe: BTreeSet<usize> = (0..total).collect();

        // `config_for(high)`: the configuration that keeps `high` double and
        // lowers everything else. In every probe below `high` is a proper
        // subset of `universe`, so the lowered set is never empty.
        let config_for = |high: &BTreeSet<usize>| -> PrecisionConfig {
            space.config(&program, universe.difference(high).copied())
        };

        // Start from the empty high-precision set (lower everything).
        match ev.evaluate(&config_for(&BTreeSet::new())) {
            Ok(rec) if rec.passes => return finish(ev, false),
            Ok(_) => {}
            Err(_) => return finish(ev, true),
        }

        // ddmin over the set of clusters kept double. Each round's partition
        // probes are the natural frontier: `first_passing` fans them out in
        // worker-width lookahead groups while preserving the historical
        // first-match semantics.
        let obs = ev.obs();
        let mut high = universe.clone();
        let mut n = 2usize;
        while high.len() >= 2 {
            let _round = obs.span(
                "dd.round",
                &[
                    ("n", Value::U64(n as u64)),
                    ("high", Value::U64(high.len() as u64)),
                ],
            );
            let chunks = split(&high, n);

            // Try each chunk as the new high set.
            let cfgs: Vec<PrecisionConfig> = chunks.iter().map(&config_for).collect();
            match first_passing(ev, &cfgs) {
                Ok(Some(i)) => {
                    high = chunks[i].clone();
                    n = 2;
                    continue;
                }
                Ok(None) => {}
                Err(_) => return finish(ev, true),
            }

            // Try each complement.
            if n > 2 {
                let complements: Vec<BTreeSet<usize>> = chunks
                    .iter()
                    .map(|c| high.difference(c).copied().collect())
                    .collect();
                let cfgs: Vec<PrecisionConfig> =
                    complements.iter().map(&config_for).collect();
                match first_passing(ev, &cfgs) {
                    Ok(Some(i)) => {
                        high = complements[i].clone();
                        n = (n - 1).max(2);
                        continue;
                    }
                    Ok(None) => {}
                    Err(_) => return finish(ev, true),
                }
            }

            // Refine granularity or stop at the local minimum.
            if n < high.len() {
                n = (2 * n).min(high.len());
            } else {
                break;
            }
        }
        finish(ev, false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mixp_core::{EvaluatorBuilder, QualityThreshold};
    use mixp_kernels::{Eos, Hydro1d, Tridiag};

    #[test]
    fn split_covers_all_elements() {
        let set: BTreeSet<usize> = (0..7).collect();
        for n in 1..=7 {
            let chunks = split(&set, n);
            let union: BTreeSet<usize> = chunks.iter().flatten().copied().collect();
            assert_eq!(union, set, "n={n}");
            assert_eq!(chunks.iter().map(BTreeSet::len).sum::<usize>(), 7);
        }
    }

    #[test]
    fn loose_threshold_terminates_in_one_evaluation() {
        let k = Tridiag::small();
        let mut ev = Evaluator::new(&k, QualityThreshold::new(1e-3));
        let r = DeltaDebug::new().search(&mut ev);
        assert!(!r.dnf);
        assert_eq!(r.evaluated, 1);
        assert!(r.best.unwrap().config.lowered_count() > 0);
    }

    #[test]
    fn impossible_threshold_finds_nothing_but_terminates() {
        let k = Eos::small();
        let mut ev = Evaluator::new(&k, QualityThreshold::new(0.0));
        let r = DeltaDebug::new().search(&mut ev);
        assert!(!r.dnf);
        // Lowering the arrays rounds the output, so a zero-error result can
        // only be the exactly-representable scalar cluster (or nothing).
        if let Some(best) = &r.best {
            assert_eq!(best.quality, 0.0);
        }
        assert!(r.evaluated >= 2, "must have explored subsets");
    }

    #[test]
    fn stricter_threshold_costs_more_evaluations() {
        let k = Hydro1d::small();
        let mut loose = Evaluator::new(&k, QualityThreshold::new(1e-3));
        let r_loose = DeltaDebug::new().search(&mut loose);
        let mut strict = Evaluator::new(&k, QualityThreshold::new(1e-15));
        let r_strict = DeltaDebug::new().search(&mut strict);
        assert!(r_strict.evaluated >= r_loose.evaluated);
    }

    #[test]
    fn budget_exhaustion_is_dnf() {
        let k = Hydro1d::small();
        let mut ev = EvaluatorBuilder::new(QualityThreshold::new(1e-15))
            .budget(2)
            .build(&k);
        let r = DeltaDebug::new().search(&mut ev);
        assert!(r.dnf);
    }
}
