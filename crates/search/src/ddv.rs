//! Variable-granularity delta debugging — the cluster-ignorant baseline.

use crate::{finish, first_passing, SearchAlgorithm, SearchResult};
use mixp_core::{Evaluator, Granularity, PrecisionConfig, Value};
use std::collections::BTreeSet;

/// Delta-debugging over raw *variables* (DDV): the same ddmin refinement as
/// [`crate::DeltaDebug`], but ignoring cluster information — each variable
/// is toggled independently, as Precimonious-style tools that lack a
/// type-dependence analysis must do.
///
/// This is the counterfactual behind the paper's first insight (§V):
/// "applying mixed-precision search algorithms individually on variables,
/// without considering whether they map on to a valid configuration, not
/// only increases the search time but may also result in cases where the
/// search algorithm fails to converge". DDV burns evaluations on
/// configurations that split clusters (which can never pass), so comparing
/// DD and DDV on the same benchmark quantifies the value of clustering.
#[derive(Debug, Clone, Copy, Default)]
pub struct VariableDeltaDebug;

impl VariableDeltaDebug {
    /// Creates the algorithm.
    pub fn new() -> Self {
        VariableDeltaDebug
    }
}

fn split(set: &BTreeSet<usize>, n: usize) -> Vec<BTreeSet<usize>> {
    let items: Vec<usize> = set.iter().copied().collect();
    let mut chunks = Vec::with_capacity(n);
    let len = items.len();
    let base = len / n;
    let extra = len % n;
    let mut start = 0;
    for i in 0..n {
        let sz = base + usize::from(i < extra);
        if sz == 0 {
            continue;
        }
        chunks.push(items[start..start + sz].iter().copied().collect());
        start += sz;
    }
    chunks
}

impl SearchAlgorithm for VariableDeltaDebug {
    fn name(&self) -> &str {
        "DDV"
    }

    fn full_name(&self) -> &str {
        "variable-level delta-debugging"
    }

    fn search(&self, ev: &mut Evaluator<'_>) -> SearchResult {
        let space = ev.space(Granularity::Variables);
        let program = ev.program().clone();
        let total = space.len();
        if total == 0 {
            return finish(ev, false);
        }
        let universe: BTreeSet<usize> = (0..total).collect();

        // Configurations that split a cluster simply fail verification
        // (they do not compile) — DDV cannot tell why. As in DD, every
        // probed `high` is a proper subset, so the lowered set is never
        // empty.
        let config_for = |high: &BTreeSet<usize>| -> PrecisionConfig {
            space.config(&program, universe.difference(high).copied())
        };

        match ev.evaluate(&config_for(&BTreeSet::new())) {
            Ok(rec) if rec.passes => return finish(ev, false),
            Ok(_) => {}
            Err(_) => return finish(ev, true),
        }

        let obs = ev.obs();
        let mut high = universe.clone();
        let mut n = 2usize;
        while high.len() >= 2 {
            let _round = obs.span(
                "ddv.round",
                &[
                    ("n", Value::U64(n as u64)),
                    ("high", Value::U64(high.len() as u64)),
                ],
            );
            let chunks = split(&high, n);
            let cfgs: Vec<PrecisionConfig> = chunks.iter().map(&config_for).collect();
            match first_passing(ev, &cfgs) {
                Ok(Some(i)) => {
                    high = chunks[i].clone();
                    n = 2;
                    continue;
                }
                Ok(None) => {}
                Err(_) => return finish(ev, true),
            }
            if n > 2 {
                let complements: Vec<BTreeSet<usize>> = chunks
                    .iter()
                    .map(|c| high.difference(c).copied().collect())
                    .collect();
                let cfgs: Vec<PrecisionConfig> =
                    complements.iter().map(&config_for).collect();
                match first_passing(ev, &cfgs) {
                    Ok(Some(i)) => {
                        high = complements[i].clone();
                        n = (n - 1).max(2);
                        continue;
                    }
                    Ok(None) => {}
                    Err(_) => return finish(ev, true),
                }
            }
            if n < high.len() {
                n = (2 * n).min(high.len());
            } else {
                break;
            }
        }
        finish(ev, false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mixp_core::{Benchmark, QualityThreshold};
    use mixp_kernels::{InnerProd, Tridiag};

    #[test]
    fn loose_threshold_still_one_evaluation() {
        // All-variables-lowered == all clusters lowered: a valid config, so
        // DDV matches DD when the whole program converts.
        let k = Tridiag::small();
        let mut ev = Evaluator::new(&k, QualityThreshold::new(1e-3));
        let r = VariableDeltaDebug::new().search(&mut ev);
        assert!(!r.dnf);
        assert_eq!(r.evaluated, 1);
    }

    #[test]
    fn ddv_wastes_evaluations_where_dd_does_not() {
        // innerprod at a strict threshold: the passing config is the
        // arrays-only cluster. DD reaches it through cluster space; DDV
        // must stumble through invalid splits.
        let k = InnerProd::small();
        let mut ev_v = Evaluator::new(&k, QualityThreshold::new(1e-8));
        let ddv = VariableDeltaDebug::new().search(&mut ev_v);
        let mut ev_c = Evaluator::new(&k, QualityThreshold::new(1e-8));
        let dd = crate::DeltaDebug::new().search(&mut ev_c);
        assert!(
            ddv.evaluated >= dd.evaluated,
            "DDV {} must not beat DD {}",
            ddv.evaluated,
            dd.evaluated
        );
        // DD finds the arrays-only configuration…
        assert!(dd.best.is_some());
    }

    #[test]
    fn any_ddv_result_is_a_valid_configuration() {
        let k = InnerProd::small();
        let mut ev = Evaluator::new(&k, QualityThreshold::new(1e-3));
        let r = VariableDeltaDebug::new().search(&mut ev);
        if let Some(best) = r.best {
            assert!(k.program().validate(&best.config).is_ok());
        }
    }
}
