//! Genetic-algorithm search.

use crate::{finish, SearchAlgorithm, SearchResult};
use mixp_core::synth::SplitMix64;
use mixp_core::{Evaluator, Granularity, Value};

/// Tuning knobs of the genetic search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GeneticParams {
    /// Individuals per generation.
    pub population: usize,
    /// Hard cap on generations — the strict termination criterion that makes
    /// GA's analysis time "the easiest to predict" (§V).
    pub max_generations: usize,
    /// Stop early after this many generations without improvement.
    pub stall_generations: usize,
    /// RNG seed. Changing it changes which configuration GA converges to —
    /// the non-determinism the paper observes on Hotspot.
    pub seed: u64,
}

impl Default for GeneticParams {
    fn default() -> Self {
        GeneticParams {
            population: 8,
            max_generations: 6,
            stall_generations: 2,
            seed: 0x6841_u64,
        }
    }
}

/// Genetic-algorithm search (GA): the CRAFT extension contributed by the
/// paper (§II-B).
///
/// A configuration is a bit string over the clusters (1 = lowered). The
/// population starts random; each generation selects fit parents by binary
/// tournament, combines them by single-point crossover and mutates bits
/// with probability `1/n`. Fitness is the achieved speedup when the
/// configuration passes verification, and 0 otherwise. The search stops
/// after a fixed number of generations or when the best individual stops
/// improving — so the number of evaluated configurations is tightly bounded,
/// at the price of randomness in the result.
#[derive(Debug, Clone, Copy)]
pub struct Genetic {
    params: GeneticParams,
}

impl Genetic {
    /// Creates the algorithm with the given parameters.
    pub fn new(params: GeneticParams) -> Self {
        Genetic { params }
    }

    /// The active parameters.
    pub fn params(&self) -> GeneticParams {
        self.params
    }
}

impl Default for Genetic {
    fn default() -> Self {
        Genetic::new(GeneticParams::default())
    }
}

type Individual = Vec<bool>;

fn random_individual(rng: &mut SplitMix64, n: usize) -> Individual {
    (0..n).map(|_| rng.next_u64() & 1 == 1).collect()
}

fn crossover(rng: &mut SplitMix64, a: &Individual, b: &Individual) -> Individual {
    let n = a.len();
    if n <= 1 {
        return a.clone();
    }
    let cut = 1 + rng.next_range((n - 1) as u64) as usize;
    a[..cut].iter().chain(&b[cut..]).copied().collect()
}

fn mutate(rng: &mut SplitMix64, ind: &mut Individual) {
    let n = ind.len().max(1);
    for bit in ind.iter_mut() {
        if rng.next_range(n as u64) == 0 {
            *bit = !*bit;
        }
    }
}

impl SearchAlgorithm for Genetic {
    fn name(&self) -> &str {
        "GA"
    }

    fn full_name(&self) -> &str {
        "genetic"
    }

    fn search(&self, ev: &mut Evaluator<'_>) -> SearchResult {
        let space = ev.space(Granularity::Clusters);
        let n = space.len();
        if n == 0 {
            return finish(ev, false);
        }
        let p = self.params;
        let mut rng = SplitMix64::new(p.seed);

        // Scores a whole generation in one batch — the GA's natural
        // frontier, since fitness values are only consumed after the full
        // generation is evaluated. `None` propagates budget exhaustion.
        let score_generation =
            |ev: &mut Evaluator<'_>, pop: &[Individual]| -> Option<Vec<f64>> {
                let cfgs: Vec<_> = pop
                    .iter()
                    .map(|ind| space.config_from_mask(ev.program(), ind))
                    .collect();
                let mut scores = Vec::with_capacity(pop.len());
                for res in ev.evaluate_batch(&cfgs) {
                    match res {
                        Ok(rec) if rec.passes => scores.push(rec.speedup),
                        Ok(_) => scores.push(0.0),
                        Err(_) => return None,
                    }
                }
                Some(scores)
            };

        let obs = ev.obs();
        let mut population: Vec<Individual> = (0..p.population)
            .map(|_| random_individual(&mut rng, n))
            .collect();
        let gen0 = obs.span("ga.generation", &[("gen", Value::U64(0))]);
        let mut scores = match score_generation(ev, &population) {
            Some(s) => s,
            None => return finish(ev, true),
        };
        gen0.end_with(&[]);

        let mut best_score = scores.iter().copied().fold(0.0, f64::max);
        let mut stall = 0usize;

        for _gen in 1..p.max_generations {
            if stall >= p.stall_generations {
                break;
            }
            // Binary-tournament parent selection.
            let select = |rng: &mut SplitMix64| -> usize {
                let a = rng.next_range(p.population as u64) as usize;
                let b = rng.next_range(p.population as u64) as usize;
                if scores[a] >= scores[b] {
                    a
                } else {
                    b
                }
            };
            // Elitism: keep the single best individual.
            let elite = scores
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .map(|(i, _)| i)
                .unwrap_or(0);
            let mut next_pop = vec![population[elite].clone()];
            while next_pop.len() < p.population {
                let (pa, pb) = (select(&mut rng), select(&mut rng));
                let mut child = crossover(&mut rng, &population[pa], &population[pb]);
                mutate(&mut rng, &mut child);
                next_pop.push(child);
            }
            population = next_pop;
            let span = obs.span("ga.generation", &[("gen", Value::U64(_gen as u64))]);
            scores = match score_generation(ev, &population) {
                Some(s) => s,
                None => return finish(ev, true),
            };
            let gen_best = scores.iter().copied().fold(0.0, f64::max);
            span.end_with(&[("best", Value::F64(gen_best))]);
            if gen_best > best_score + 1e-12 {
                best_score = gen_best;
                stall = 0;
            } else {
                stall += 1;
            }
        }
        finish(ev, false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mixp_core::{EvaluatorBuilder, QualityThreshold};
    use mixp_kernels::{Eos, Hydro1d, Tridiag};

    #[test]
    fn crossover_preserves_length() {
        let mut rng = SplitMix64::new(1);
        let a = vec![true; 8];
        let b = vec![false; 8];
        let c = crossover(&mut rng, &a, &b);
        assert_eq!(c.len(), 8);
        assert!(c[0], "prefix comes from a");
    }

    #[test]
    fn mutate_flips_roughly_one_bit() {
        let mut rng = SplitMix64::new(2);
        let mut flips = 0usize;
        for _ in 0..200 {
            let mut ind = vec![false; 10];
            mutate(&mut rng, &mut ind);
            flips += ind.iter().filter(|b| **b).count();
        }
        let avg = flips as f64 / 200.0;
        assert!((0.5..2.0).contains(&avg), "average flips {avg}");
    }

    #[test]
    fn ga_is_deterministic_for_a_fixed_seed() {
        let k = Eos::small();
        let mut ev1 = Evaluator::new(&k, QualityThreshold::new(1e-3));
        let r1 = Genetic::default().search(&mut ev1);
        let mut ev2 = Evaluator::new(&k, QualityThreshold::new(1e-3));
        let r2 = Genetic::default().search(&mut ev2);
        assert_eq!(r1.evaluated, r2.evaluated);
        assert_eq!(
            r1.best.map(|b| b.config.key()),
            r2.best.map(|b| b.config.key())
        );
    }

    #[test]
    fn different_seeds_may_visit_different_configs() {
        let k = Hydro1d::small();
        let mut ev1 = Evaluator::new(&k, QualityThreshold::new(1e-3));
        let r1 = Genetic::new(GeneticParams {
            seed: 1,
            ..GeneticParams::default()
        })
        .search(&mut ev1);
        let mut ev2 = Evaluator::new(&k, QualityThreshold::new(1e-3));
        let r2 = Genetic::new(GeneticParams {
            seed: 2,
            ..GeneticParams::default()
        })
        .search(&mut ev2);
        // Both must find *something* at this loose threshold.
        assert!(r1.best.is_some() && r2.best.is_some());
    }

    #[test]
    fn evaluation_count_is_bounded_by_generations() {
        let k = Tridiag::small();
        let p = GeneticParams::default();
        let mut ev = Evaluator::new(&k, QualityThreshold::new(1e-3));
        let r = Genetic::new(p).search(&mut ev);
        assert!(!r.dnf);
        assert!(r.evaluated <= p.population * p.max_generations);
    }

    #[test]
    fn budget_exhaustion_reports_dnf() {
        let k = Eos::small();
        let mut ev = EvaluatorBuilder::new(QualityThreshold::new(1e-3))
            .budget(2)
            .build(&k);
        let r = Genetic::default().search(&mut ev);
        assert!(r.dnf);
    }
}
