//! Hierarchical-compositional search.

use crate::hr::{passing_components, try_lower_batch};
use crate::{finish, SearchAlgorithm, SearchResult};
use mixp_core::{Evaluator, Value, VarId};
use std::collections::BTreeSet;

/// Hierarchical-compositional search (HC): use the hierarchical descent to
/// identify program components amenable to replacement, then combine those
/// components compositionally to find inter-component mixed-precision
/// configurations (§II-B).
///
/// The goal is to find multi-component configurations without starting from
/// every individual variable. The search terminates when every passing
/// configuration has been composed with every other (closure), or when the
/// budget runs out.
#[derive(Debug, Clone, Copy, Default)]
pub struct HierCompositional;

impl HierCompositional {
    /// Creates the algorithm.
    pub fn new() -> Self {
        HierCompositional
    }
}

impl SearchAlgorithm for HierCompositional {
    fn name(&self) -> &str {
        "HC"
    }

    fn full_name(&self) -> &str {
        "hierarchical-compositional"
    }

    fn search(&self, ev: &mut Evaluator<'_>) -> SearchResult {
        // Phase 1: hierarchical identification of passing components.
        let components = match passing_components(ev) {
            Ok(c) => c,
            Err(_) => return finish(ev, true),
        };
        if components.len() <= 1 {
            // Nothing to compose: either the whole program passed, or at
            // most one component did.
            return finish(ev, false);
        }

        // Phase 2: compositional closure over the passing components. As in
        // CM, a wave's candidate unions depend only on the previous wave,
        // so each wave is one independent batch.
        let obs = ev.obs();
        let mut passing: Vec<BTreeSet<VarId>> = components;
        let mut seen: BTreeSet<BTreeSet<VarId>> = passing.iter().cloned().collect();
        let mut frontier = passing.clone();
        while !frontier.is_empty() {
            let mut candidates: Vec<BTreeSet<VarId>> = Vec::new();
            for f in &frontier {
                for p in &passing {
                    let union: BTreeSet<VarId> = f.union(p).copied().collect();
                    if union.len() == f.len() || seen.contains(&union) {
                        continue;
                    }
                    seen.insert(union.clone());
                    candidates.push(union);
                }
            }
            let _wave = obs.span(
                "hc.wave",
                &[("candidates", Value::U64(candidates.len() as u64))],
            );
            let flags = match try_lower_batch(ev, &candidates) {
                Ok(f) => f,
                Err(_) => return finish(ev, true),
            };
            let next: Vec<BTreeSet<VarId>> = candidates
                .into_iter()
                .zip(flags)
                .filter_map(|(u, passed)| passed.then_some(u))
                .collect();
            passing.extend(next.iter().cloned());
            frontier = next;
        }
        finish(ev, false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mixp_core::QualityThreshold;
    use mixp_kernels::{Eos, Tridiag};

    #[test]
    fn loose_threshold_terminates_like_hr() {
        let k = Tridiag::small();
        let mut ev = Evaluator::new(&k, QualityThreshold::new(1e-3));
        let r = HierCompositional::new().search(&mut ev);
        assert!(!r.dnf);
        assert_eq!(r.evaluated, 1);
        assert!(r.best.is_some());
    }

    #[test]
    fn impossible_threshold_finds_nothing() {
        let k = Eos::small();
        let mut ev = Evaluator::new(&k, QualityThreshold::new(0.0));
        let r = HierCompositional::new().search(&mut ev);
        assert!(!r.dnf);
        assert!(r.best.is_none());
    }

    #[test]
    fn result_passes_when_found() {
        let k = Eos::small();
        let mut ev = Evaluator::new(&k, QualityThreshold::new(1e-3));
        let r = HierCompositional::new().search(&mut ev);
        if let Some(best) = r.best {
            assert!(best.passes);
        }
    }
}
