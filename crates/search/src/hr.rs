//! Hierarchical search.

use crate::{finish, SearchAlgorithm, SearchResult};
use mixp_core::{EvalError, Evaluator, PrecisionConfig, Value, VarId};
use std::collections::BTreeSet;

/// Hierarchical search (HR): use program structure — whole program, then
/// modules, then functions, then individual variables — to find large
/// groups of variables that can be lowered together (§II-B, CRAFT).
///
/// HR deliberately does **not** use cluster information (clusters may cross
/// function and module boundaries), so at the function/variable level it
/// routinely creates configurations that split a cluster and fail to
/// compile; those evaluations are wasted budget, which is the paper's core
/// criticism of the variable-granularity strategies.
#[derive(Debug, Clone, Copy, Default)]
pub struct Hierarchical;

impl Hierarchical {
    /// Creates the algorithm.
    pub fn new() -> Self {
        Hierarchical
    }
}

/// Evaluates the configuration that lowers exactly `vars`; returns whether
/// it passed.
pub(crate) fn try_lower(
    ev: &mut Evaluator<'_>,
    vars: &BTreeSet<VarId>,
) -> Result<bool, EvalError> {
    if vars.is_empty() {
        return Ok(false);
    }
    let cfg = PrecisionConfig::from_lowered(ev.program().var_count(), vars.iter().copied());
    Ok(ev.evaluate(&cfg)?.passes)
}

/// Batch counterpart of [`try_lower`]: evaluates the lowering of every set
/// through the evaluator's fan-out and returns per-set pass flags. Empty
/// sets never pass and are not evaluated, mirroring the scalar helper.
pub(crate) fn try_lower_batch(
    ev: &mut Evaluator<'_>,
    sets: &[BTreeSet<VarId>],
) -> Result<Vec<bool>, EvalError> {
    let var_count = ev.program().var_count();
    let nonempty: Vec<usize> = sets
        .iter()
        .enumerate()
        .filter(|(_, s)| !s.is_empty())
        .map(|(i, _)| i)
        .collect();
    let cfgs: Vec<PrecisionConfig> = nonempty
        .iter()
        .map(|&i| PrecisionConfig::from_lowered(var_count, sets[i].iter().copied()))
        .collect();
    let mut passes = vec![false; sets.len()];
    for (&i, res) in nonempty.iter().zip(ev.evaluate_batch(&cfgs)) {
        passes[i] = res?.passes;
    }
    Ok(passes)
}

/// Descends the program hierarchy, returning every component (as a variable
/// set) that passed in isolation at the coarsest level it passed.
///
/// Sibling components at each level are probed in lookahead groups of the
/// evaluator's worker width (the hierarchical search's natural frontier);
/// at width 1 this is exactly the historical depth-first order.
pub(crate) fn passing_components(
    ev: &mut Evaluator<'_>,
) -> Result<Vec<BTreeSet<VarId>>, EvalError> {
    let obs = ev.obs();
    let program = ev.program();
    let all: BTreeSet<VarId> = program.tunable_vars().into_iter().collect();
    if all.is_empty() {
        return Ok(Vec::new());
    }
    // Level 0: the entire application.
    let whole = obs.span("hr.program", &[("vars", Value::U64(all.len() as u64))]);
    if try_lower(ev, &all)? {
        whole.end_with(&[("passed", Value::Bool(true))]);
        return Ok(vec![all]);
    }
    whole.end_with(&[("passed", Value::Bool(false))]);
    let width = ev.workers().max(1);
    let mut accepted = Vec::new();
    let module_ids: Vec<_> = ev.program().modules().map(|(id, _)| id).collect();
    let modules: Vec<_> = module_ids
        .into_iter()
        .map(|m| {
            let mvars: BTreeSet<VarId> = ev.program().vars_in_module(m).into_iter().collect();
            (m, mvars)
        })
        .filter(|(_, mvars)| !mvars.is_empty())
        .collect();
    let _refine = obs.span(
        "hr.refine",
        &[("modules", Value::U64(modules.len() as u64))],
    );
    for group in modules.chunks(width) {
        let sets: Vec<BTreeSet<VarId>> = group.iter().map(|(_, s)| s.clone()).collect();
        let passes = try_lower_batch(ev, &sets)?;
        for ((module, mvars), passed) in group.iter().zip(passes) {
            if passed {
                accepted.push(mvars.clone());
                continue;
            }
            // Fall back to the functions of this module.
            let func_ids: Vec<_> = ev
                .program()
                .functions()
                .map(|(id, _)| id)
                .filter(|f| ev.program().module_of(*f) == *module)
                .collect();
            let functions: Vec<BTreeSet<VarId>> = func_ids
                .into_iter()
                .map(|f| ev.program().vars_in_function(f).into_iter().collect())
                .filter(|fvars: &BTreeSet<VarId>| !fvars.is_empty())
                .collect();
            for fgroup in functions.chunks(width) {
                let fpasses = try_lower_batch(ev, fgroup)?;
                for (fvars, fpassed) in fgroup.iter().zip(fpasses) {
                    if fpassed {
                        accepted.push(fvars.clone());
                        continue;
                    }
                    // Finally, individual variables — siblings with no
                    // early exit, so one full batch is sequence-identical.
                    let singles: Vec<BTreeSet<VarId>> =
                        fvars.iter().map(|v| BTreeSet::from([*v])).collect();
                    let vpasses = try_lower_batch(ev, &singles)?;
                    for (single, vpassed) in singles.into_iter().zip(vpasses) {
                        if vpassed {
                            accepted.push(single);
                        }
                    }
                }
            }
        }
    }
    Ok(accepted)
}

impl SearchAlgorithm for Hierarchical {
    fn name(&self) -> &str {
        "HR"
    }

    fn full_name(&self) -> &str {
        "hierarchical"
    }

    fn search(&self, ev: &mut Evaluator<'_>) -> SearchResult {
        let components = match passing_components(ev) {
            Ok(c) => c,
            Err(_) => return finish(ev, true),
        };
        // Greedily take the union of everything that passed in isolation and
        // verify the combined configuration.
        let union: BTreeSet<VarId> = components.into_iter().flatten().collect();
        ev.obs()
            .event("hr.union", &[("vars", Value::U64(union.len() as u64))]);
        if !union.is_empty() && try_lower(ev, &union).is_err() {
            return finish(ev, true);
        }
        finish(ev, false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mixp_core::Benchmark;
    use mixp_core::{Granularity, QualityThreshold};
    use mixp_kernels::{Hydro1d, IntPredict, Tridiag};

    #[test]
    fn loose_threshold_terminates_at_the_whole_program() {
        let k = Tridiag::small();
        let mut ev = Evaluator::new(&k, QualityThreshold::new(1e-3));
        let r = Hierarchical::new().search(&mut ev);
        assert!(!r.dnf);
        assert_eq!(r.evaluated, 1, "whole-program config passes immediately");
        let best = r.best.unwrap();
        assert_eq!(
            best.config.lowered_count(),
            k.program().total_variables(),
            "everything tunable is lowered"
        );
    }

    #[test]
    fn variable_level_descent_wastes_evaluations_on_invalid_configs() {
        // With an impossible threshold the whole-program config fails and HR
        // descends to variables; single-variable configs split clusters and
        // fail to compile — budget burned with nothing found.
        let k = IntPredict::small();
        let mut ev = Evaluator::new(&k, QualityThreshold::new(0.0));
        let r = Hierarchical::new().search(&mut ev);
        assert!(!r.dnf);
        assert!(r.best.is_none());
        let space = ev.space(Granularity::Variables);
        // 1 evaluation for the whole program (module- and function-level
        // configs are identical for a single-function kernel and hit the
        // memo), plus one per variable.
        assert_eq!(r.evaluated, 1 + space.len());
    }

    #[test]
    fn hr_evaluates_more_than_dd_on_strict_thresholds() {
        let k = Hydro1d::small();
        let mut ev_hr = Evaluator::new(&k, QualityThreshold::new(1e-15));
        let r_hr = Hierarchical::new().search(&mut ev_hr);
        let mut ev_dd = Evaluator::new(&k, QualityThreshold::new(1e-15));
        let r_dd = crate::DeltaDebug::new().search(&mut ev_dd);
        assert!(
            r_hr.evaluated >= r_dd.evaluated,
            "HR {} vs DD {}",
            r_hr.evaluated,
            r_dd.evaluated
        );
    }
}
