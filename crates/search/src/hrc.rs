//! Cluster-aware hierarchical search — the redesign the paper recommends.

use crate::{finish, SearchAlgorithm, SearchResult};
use mixp_core::{EvalError, Evaluator, PrecisionConfig, Value, VarId};
use std::collections::BTreeSet;

/// Cluster-aware hierarchical search (HR+): the paper's §V recommendation,
/// implemented.
///
/// The stock hierarchical strategies ignore cluster information because
/// clusters may cross function and module boundaries, so their
/// variable-level configurations frequently fail to compile and waste
/// budget. The paper concludes that "the evaluation … provides sufficient
/// motivation to redesign these strategies to take clustering information
/// into account".
///
/// HR+ keeps the program-structure descent of [`crate::Hierarchical`] but
/// *closes every candidate variable set over its clusters* before
/// evaluating: a component's set is expanded with every cluster member of
/// every variable it contains. Every generated configuration therefore
/// compiles, and candidate sets that close over each other deduplicate via
/// the evaluator's memo — eliminating exactly the waste the paper measured.
#[derive(Debug, Clone, Copy, Default)]
pub struct ClusterHierarchical;

impl ClusterHierarchical {
    /// Creates the algorithm.
    pub fn new() -> Self {
        ClusterHierarchical
    }
}

/// Expands `vars` to cluster closure: every member of every cluster touched
/// by the set joins it.
fn close_over_clusters(ev: &Evaluator<'_>, vars: &BTreeSet<VarId>) -> BTreeSet<VarId> {
    let clustering = ev.program().clustering();
    let mut closed = BTreeSet::new();
    for &v in vars {
        // Untunable locations are dropped from the closure.
        if let Some(c) = clustering.cluster_of(v) {
            closed.extend(clustering.members(c).iter().copied());
        }
    }
    closed
}

fn try_lower_closed(
    ev: &mut Evaluator<'_>,
    vars: &BTreeSet<VarId>,
) -> Result<bool, EvalError> {
    let closed = close_over_clusters(ev, vars);
    if closed.is_empty() {
        return Ok(false);
    }
    let cfg = PrecisionConfig::from_lowered(ev.program().var_count(), closed.iter().copied());
    debug_assert!(ev.program().validate(&cfg).is_ok(), "closure must compile");
    Ok(ev.evaluate(&cfg)?.passes)
}

/// Batch counterpart of [`try_lower_closed`]: closes every candidate set
/// over its clusters, fans the resulting configurations out, and returns
/// per-set pass flags. Sets with an empty closure never pass and are not
/// evaluated, mirroring the scalar helper.
fn try_lower_closed_batch(
    ev: &mut Evaluator<'_>,
    sets: &[BTreeSet<VarId>],
) -> Result<Vec<bool>, EvalError> {
    let var_count = ev.program().var_count();
    let closed: Vec<BTreeSet<VarId>> =
        sets.iter().map(|s| close_over_clusters(ev, s)).collect();
    let nonempty: Vec<usize> = closed
        .iter()
        .enumerate()
        .filter(|(_, s)| !s.is_empty())
        .map(|(i, _)| i)
        .collect();
    let cfgs: Vec<PrecisionConfig> = nonempty
        .iter()
        .map(|&i| {
            let cfg = PrecisionConfig::from_lowered(var_count, closed[i].iter().copied());
            debug_assert!(ev.program().validate(&cfg).is_ok(), "closure must compile");
            cfg
        })
        .collect();
    let mut passes = vec![false; sets.len()];
    for (&i, res) in nonempty.iter().zip(ev.evaluate_batch(&cfgs)) {
        passes[i] = res?.passes;
    }
    Ok(passes)
}

/// The cluster-closed hierarchical descent: modules, then functions, then
/// whole clusters — sibling candidates probed in lookahead groups of the
/// evaluator's worker width (at width 1, the historical depth-first order).
fn passing_closed_components(
    ev: &mut Evaluator<'_>,
) -> Result<Vec<BTreeSet<VarId>>, EvalError> {
    let obs = ev.obs();
    let width = ev.workers().max(1);
    let mut accepted: Vec<BTreeSet<VarId>> = Vec::new();
    let module_ids: Vec<_> = ev.program().modules().map(|(id, _)| id).collect();
    let modules: Vec<_> = module_ids
        .into_iter()
        .map(|m| {
            let mvars: BTreeSet<VarId> = ev.program().vars_in_module(m).into_iter().collect();
            (m, mvars)
        })
        .filter(|(_, mvars)| !mvars.is_empty())
        .collect();
    let _refine = obs.span(
        "hrplus.refine",
        &[("modules", Value::U64(modules.len() as u64))],
    );
    for group in modules.chunks(width) {
        let sets: Vec<BTreeSet<VarId>> = group.iter().map(|(_, s)| s.clone()).collect();
        let passes = try_lower_closed_batch(ev, &sets)?;
        for ((module, mvars), passed) in group.iter().zip(passes) {
            if passed {
                accepted.push(close_over_clusters(ev, mvars));
                continue;
            }
            let func_ids: Vec<_> = ev
                .program()
                .functions()
                .map(|(id, _)| id)
                .filter(|f| ev.program().module_of(*f) == *module)
                .collect();
            let functions: Vec<BTreeSet<VarId>> = func_ids
                .into_iter()
                .map(|f| ev.program().vars_in_function(f).into_iter().collect())
                .filter(|fvars: &BTreeSet<VarId>| !fvars.is_empty())
                .collect();
            for fgroup in functions.chunks(width) {
                let fpasses = try_lower_closed_batch(ev, fgroup)?;
                for (fvars, fpassed) in fgroup.iter().zip(fpasses) {
                    if fpassed {
                        accepted.push(close_over_clusters(ev, fvars));
                        continue;
                    }
                    // Finest level: whole clusters, not raw variables — one
                    // probe per distinct cluster, batched as a full sibling
                    // group (the historical loop had no early exit here).
                    let mut seen_clusters = BTreeSet::new();
                    let mut probes: Vec<BTreeSet<VarId>> = Vec::new();
                    for &v in fvars {
                        if let Some(c) = ev.program().clustering().cluster_of(v) {
                            if seen_clusters.insert(c) {
                                probes.push(BTreeSet::from([v]));
                            }
                        }
                    }
                    let ppasses = try_lower_closed_batch(ev, &probes)?;
                    for (single, ppassed) in probes.into_iter().zip(ppasses) {
                        if ppassed {
                            accepted.push(close_over_clusters(ev, &single));
                        }
                    }
                }
            }
        }
    }
    Ok(accepted)
}

impl SearchAlgorithm for ClusterHierarchical {
    fn name(&self) -> &str {
        "HR+"
    }

    fn full_name(&self) -> &str {
        "cluster-aware hierarchical"
    }

    fn search(&self, ev: &mut Evaluator<'_>) -> SearchResult {
        let all: BTreeSet<VarId> = ev.program().tunable_vars().into_iter().collect();
        if all.is_empty() {
            return finish(ev, false);
        }
        // Level 0: the whole application.
        let whole = ev
            .obs()
            .span("hrplus.program", &[("vars", Value::U64(all.len() as u64))]);
        match try_lower_closed(ev, &all) {
            Ok(true) => {
                whole.end_with(&[("passed", Value::Bool(true))]);
                return finish(ev, false);
            }
            Ok(false) => whole.end_with(&[("passed", Value::Bool(false))]),
            Err(_) => return finish(ev, true),
        }
        // Descend: modules, then functions, then single clusters — every
        // candidate closed over clusters before evaluation.
        let accepted = match passing_closed_components(ev) {
            Ok(a) => a,
            Err(_) => return finish(ev, true),
        };
        // Combine everything that passed in isolation.
        let union: BTreeSet<VarId> = accepted.into_iter().flatten().collect();
        if !union.is_empty() && try_lower_closed(ev, &union).is_err() {
            return finish(ev, true);
        }
        finish(ev, false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mixp_core::{Benchmark, QualityThreshold};
    use mixp_kernels::{IntPredict, Tridiag};

    #[test]
    fn loose_threshold_terminates_at_whole_program() {
        let k = Tridiag::small();
        let mut ev = Evaluator::new(&k, QualityThreshold::new(1e-3));
        let r = ClusterHierarchical::new().search(&mut ev);
        assert!(!r.dnf);
        assert_eq!(r.evaluated, 1);
        assert!(r.best.is_some());
    }

    #[test]
    fn every_evaluated_config_compiles() {
        // Unlike stock HR, HR+ burns no budget on invalid configurations:
        // with an impossible threshold on a clustered kernel, the evaluation
        // count is bounded by the number of *clusters* seen per level, not
        // variables.
        let k = IntPredict::small(); // TV=9, TC=2
        let mut ev = Evaluator::new(&k, QualityThreshold::new(0.0));
        let r = ClusterHierarchical::new().search(&mut ev);
        assert!(!r.dnf);
        // program + module + function levels memoise to one config (one
        // function), plus one per cluster: ≤ 1 + TC.
        assert!(
            r.evaluated <= 1 + k.program().total_clusters(),
            "evaluated {}",
            r.evaluated
        );
    }

    #[test]
    fn hrplus_never_loses_to_hr() {
        // On kernels, HR+ finds at least the speedup HR finds.
        for bench in mixp_kernels::all_kernels_small() {
            let mut ev1 = Evaluator::new(bench.as_ref(), QualityThreshold::new(1e-3));
            let plus = ClusterHierarchical::new().search(&mut ev1);
            let mut ev2 = Evaluator::new(bench.as_ref(), QualityThreshold::new(1e-3));
            let stock = crate::Hierarchical::new().search(&mut ev2);
            let p = plus.speedup().unwrap_or(0.0);
            let s = stock.speedup().unwrap_or(0.0);
            assert!(
                p >= s - 1e-9,
                "{}: HR+ {} < HR {}",
                bench.name(),
                p,
                s
            );
            assert!(plus.evaluated <= stock.evaluated.max(plus.evaluated));
        }
    }
}
