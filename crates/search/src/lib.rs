//! The six mixed-precision search algorithms of HPC-MixPBench (§II-B).
//!
//! Every algorithm consumes an [`Evaluator`] — which runs configurations,
//! verifies quality against the threshold, prices speedup and enforces the
//! evaluation budget (the 24-hour-limit analogue) — and produces a
//! [`SearchResult`].
//!
//! | Short | Algorithm | Granularity |
//! |-------|-----------------------------|-------------|
//! | CB    | [`Combinational`]           | clusters    |
//! | CM    | [`Compositional`]           | clusters    |
//! | DD    | [`DeltaDebug`]              | clusters    |
//! | HR    | [`Hierarchical`]            | variables   |
//! | HC    | [`HierCompositional`]       | variables   |
//! | GA    | [`Genetic`]                 | clusters    |
//! | HR+   | [`ClusterHierarchical`]     | clusters    |
//!
//! `HR+` is this reproduction's extension: the cluster-aware hierarchical
//! redesign the paper's §V recommends as future work.
//!
//! The hierarchical strategies deliberately ignore cluster information
//! (clusters may cross function/module boundaries — §II-B), so they can
//! generate configurations that do not compile; those evaluations consume
//! budget but never pass, reproducing the paper's observation that
//! variable-level search "wastes time on creating useless configurations".
//!
//! # Example
//!
//! ```
//! use mixp_core::{Evaluator, QualityThreshold};
//! use mixp_kernels::Tridiag;
//! use mixp_search::{DeltaDebug, SearchAlgorithm};
//!
//! let kernel = Tridiag::small();
//! let mut ev = Evaluator::new(&kernel, QualityThreshold::new(1e-3));
//! let result = DeltaDebug::new().search(&mut ev);
//! assert!(!result.dnf);
//! assert!(result.best.is_some());
//! ```

mod cb;
mod cb3;
mod cm;
mod dd;
mod ddv;
mod ga;
mod hc;
mod hr;
mod hrc;
mod result;

pub use cb::Combinational;
pub use cb3::MultiPrecisionExhaustive;
pub use cm::Compositional;
pub use dd::DeltaDebug;
pub use ddv::VariableDeltaDebug;
pub use ga::{Genetic, GeneticParams};
pub use hc::HierCompositional;
pub use hr::Hierarchical;
pub use hrc::ClusterHierarchical;
pub use result::{SearchAlgorithm, SearchResult};

use mixp_core::{EvalError, Evaluator, PrecisionConfig};

/// All six algorithms in the paper's order (CB, CM, DD, HR, HC, GA), with
/// default parameters.
pub fn all_algorithms() -> Vec<Box<dyn SearchAlgorithm>> {
    vec![
        Box::new(Combinational::new()),
        Box::new(Compositional::new()),
        Box::new(DeltaDebug::new()),
        Box::new(Hierarchical::new()),
        Box::new(HierCompositional::new()),
        Box::new(Genetic::new(GeneticParams::default())),
    ]
}

/// Looks an algorithm up by its short name (`"CB"`, `"CM"`, `"DD"`, `"HR"`,
/// `"HC"`, `"GA"`), case-insensitively. Also accepts the long names used in
/// the paper's YAML files (e.g. `"ddebug"`, `"combinational"`).
pub fn algorithm_by_name(name: &str) -> Option<Box<dyn SearchAlgorithm>> {
    match name.to_ascii_lowercase().as_str() {
        "cb" | "combinational" => Some(Box::new(Combinational::new())),
        "cm" | "compositional" => Some(Box::new(Compositional::new())),
        "dd" | "ddebug" | "delta-debugging" | "delta_debug" => Some(Box::new(DeltaDebug::new())),
        "hr" | "hierarchical" => Some(Box::new(Hierarchical::new())),
        "hc" | "hierarchical-compositional" | "hier-comp" => {
            Some(Box::new(HierCompositional::new()))
        }
        "hr+" | "hrplus" | "cluster-hierarchical" => {
            Some(Box::new(ClusterHierarchical::new()))
        }
        "cb3" | "multi-precision-exhaustive" => {
            Some(Box::new(MultiPrecisionExhaustive::new()))
        }
        "ddv" | "variable-delta-debugging" => Some(Box::new(VariableDeltaDebug::new())),
        "ga" | "genetic" => Some(Box::new(Genetic::new(GeneticParams::default()))),
        _ => None,
    }
}

pub(crate) fn finish(ev: &Evaluator<'_>, dnf: bool) -> SearchResult {
    SearchResult {
        best: ev.best().cloned(),
        evaluated: ev.evaluated(),
        dnf,
    }
}

/// Evaluates every configuration through the evaluator's batch fan-out and
/// returns the per-configuration pass flags, or the first admission error.
///
/// Because `evaluate_batch` charges budget/deadline and commits records in
/// submission order, this is observably identical to the sequential
/// `for cfg { ev.evaluate(cfg)?.passes }` loop at **any** worker count —
/// use it wherever the historical loop had no early exit between members.
pub(crate) fn batch_passes(
    ev: &mut Evaluator<'_>,
    cfgs: &[PrecisionConfig],
) -> Result<Vec<bool>, EvalError> {
    let mut passes = Vec::with_capacity(cfgs.len());
    for res in ev.evaluate_batch(cfgs) {
        passes.push(res?.passes);
    }
    Ok(passes)
}

/// Scans `cfgs` left to right for the first passing configuration, fanning
/// evaluations out in speculative lookahead groups of the evaluator's
/// worker width.
///
/// At width 1 the evaluation sequence is exactly the historical sequential
/// early-exit loop; at width `w > 1` up to `w - 1` candidates beyond the
/// first passing one may be evaluated speculatively (trading budget for
/// wall-clock, which is the documented `MIXP_WORKERS > 1` contract).
pub(crate) fn first_passing(
    ev: &mut Evaluator<'_>,
    cfgs: &[PrecisionConfig],
) -> Result<Option<usize>, EvalError> {
    let width = ev.workers().max(1);
    let mut start = 0;
    for group in cfgs.chunks(width) {
        for (off, res) in ev.evaluate_batch(group).into_iter().enumerate() {
            if res?.passes {
                return Ok(Some(start + off));
            }
        }
        start += group.len();
    }
    Ok(None)
}

/// Chunk width for exhaustive enumerations: a few batches worth of work per
/// fan-out keeps workers busy without materialising the whole (possibly
/// multi-million-entry) configuration list at once.
pub(crate) fn enumeration_width(ev: &Evaluator<'_>) -> usize {
    (ev.workers() * 4).clamp(1, 256)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_six_algorithms() {
        let algos = all_algorithms();
        assert_eq!(algos.len(), 6);
        let names: Vec<&str> = algos.iter().map(|a| a.name()).collect();
        assert_eq!(names, vec!["CB", "CM", "DD", "HR", "HC", "GA"]);
    }

    #[test]
    fn lookup_by_any_spelling() {
        for name in ["CB", "cb", "combinational", "ddebug", "GA", "genetic"] {
            assert!(algorithm_by_name(name).is_some(), "{name}");
        }
        assert!(algorithm_by_name("nope").is_none());
    }
}
