//! The search-algorithm interface and its result type.

use mixp_core::{EvalRecord, Evaluator};
use std::fmt;

/// The outcome of one search run.
#[derive(Debug, Clone)]
pub struct SearchResult {
    /// The best *passing* configuration found (highest speedup), if any.
    pub best: Option<EvalRecord>,
    /// Number of distinct configurations evaluated — the paper's EV metric.
    pub evaluated: usize,
    /// Whether the search ran out of budget before terminating naturally
    /// (the paper's "did not produce results in 24 hours" grey box).
    pub dnf: bool,
}

impl SearchResult {
    /// Speedup of the best passing configuration (the paper's SU metric),
    /// or `None` if nothing passed or the search did not finish.
    pub fn speedup(&self) -> Option<f64> {
        if self.dnf {
            return None;
        }
        self.best.as_ref().map(|b| b.speedup)
    }

    /// Quality error of the best passing configuration (the paper's AC
    /// metric), or `None` if nothing passed or the search did not finish.
    pub fn quality(&self) -> Option<f64> {
        if self.dnf {
            return None;
        }
        self.best.as_ref().map(|b| b.quality)
    }
}

impl fmt::Display for SearchResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.dnf {
            write!(f, "DNF after {} configurations", self.evaluated)
        } else {
            match &self.best {
                Some(b) => write!(
                    f,
                    "speedup {:.2} (quality {:.3e}) in {} configurations",
                    b.speedup, b.quality, self.evaluated
                ),
                None => write!(f, "no passing configuration in {} tries", self.evaluated),
            }
        }
    }
}

/// A mixed-precision search strategy.
///
/// Implementations must stop and report `dnf = true` whenever the evaluator
/// refuses a new configuration ([`mixp_core::EvalError`]) — budget
/// exhaustion and deadline timeouts both end the search the same way; the
/// harness distinguishes them afterwards via
/// [`mixp_core::Evaluator::stop_reason`].
pub trait SearchAlgorithm: Send + Sync {
    /// Two-letter short name used in the paper's tables (CB, CM, DD, HR,
    /// HC, GA).
    fn name(&self) -> &str;

    /// Full descriptive name ("delta-debugging", …).
    fn full_name(&self) -> &str;

    /// Runs the search to completion (or budget exhaustion).
    fn search(&self, ev: &mut Evaluator<'_>) -> SearchResult;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy_result(dnf: bool) -> SearchResult {
        SearchResult {
            best: None,
            evaluated: 7,
            dnf,
        }
    }

    #[test]
    fn dnf_yields_no_metrics() {
        let r = dummy_result(true);
        assert_eq!(r.speedup(), None);
        assert_eq!(r.quality(), None);
        assert!(r.to_string().contains("DNF"));
    }

    #[test]
    fn empty_result_formats() {
        let r = dummy_result(false);
        assert!(r.to_string().contains("no passing"));
    }
}
