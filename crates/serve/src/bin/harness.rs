//! The HPC-MixPBench harness driver (§III-A.c).
//!
//! The paper's harness is invoked with a YAML configuration file and "runs
//! the analysis …, compiles the application, executes the generated
//! binaries, and performs the prescribed analysis and evaluation to
//! quantify quality loss and to measure execution time". This binary is
//! that entry point:
//!
//! ```sh
//! cargo run --release --bin harness -- configs/kmeans.yaml
//! cargo run --release --bin harness -- --scale small --workers 4 configs/*.yaml
//! cargo run --release --bin harness -- --json configs/kmeans.yaml
//! cargo run --release --bin harness -- --deadline-ms 60000 --retries 3 \
//!     --checkpoint run-state.jsonl configs/*.yaml
//! ```
//!
//! Each configuration file describes one benchmark analysis (Listing 4
//! shape); multiple files are scheduled in parallel. `--json` emits the
//! FloatSmith-style interchange document instead of the text report.
//! Failed cells are rendered as `FAILED(reason)` rows and the process
//! exits with status 3 (so scripts can distinguish "campaign finished
//! with failures" from usage errors); a `--checkpoint` file makes the
//! campaign resumable after a kill.
//!
//! Observability: `--trace FILE` streams the campaign's span/event log as
//! append-only JSONL (evaluations, search phases, retries, cache shards),
//! and `--metrics` prints the aggregated counter/histogram snapshot after
//! the report. Neither flag changes any reported number or the exit code.
//! `harness trace-summary run.jsonl` turns a captured trace back into a
//! per-phase wall-clock table offline.
//!
//! `harness serve` starts the long-lived multi-tenant campaign daemon
//! (`mixp-serve`) on a Unix-domain socket:
//!
//! ```sh
//! cargo run --release --bin harness -- serve \
//!     --socket /tmp/mixp.sock --state /tmp/mixp-state \
//!     --workers 4 --queue-depth 64 --default-quota 4096 --quota vip=65536
//! ```
//!
//! It runs until a client sends `{"op":"shutdown"}`; admitted-but-
//! unfinished campaigns survive a kill via the queue journal in the state
//! directory and resume on the next start.

use mixp_core::{MetricsSnapshot, Obs};
use mixp_harness::config::AnalysisConfig;
use mixp_harness::interchange;
use mixp_harness::job::Job;
use mixp_harness::report::{fmt_evaluated, fmt_failed, fmt_quality, fmt_speedup, render_table};
use mixp_harness::{run_campaign_with_stats, CampaignOptions, RetryPolicy, Scale};
use mixp_serve::{DaemonConfig, DaemonHandle, ServeConfig};
use std::path::PathBuf;
use std::time::Duration;

struct Cli {
    scale: Scale,
    workers: usize,
    json: bool,
    deadline: Option<Duration>,
    grace: Option<Duration>,
    retries: u32,
    backoff: Duration,
    checkpoint: Option<PathBuf>,
    fsync_every: Option<usize>,
    trace: Option<PathBuf>,
    metrics: bool,
    files: Vec<String>,
}

fn parse_cli() -> Result<Cli, String> {
    let mut cli = Cli {
        scale: Scale::Paper,
        workers: mixp_harness::scheduler::default_workers(),
        json: false,
        deadline: None,
        grace: None,
        retries: 1,
        backoff: Duration::ZERO,
        checkpoint: None,
        fsync_every: None,
        trace: None,
        metrics: false,
        files: Vec::new(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                let v = args.next().ok_or("--scale needs a value")?;
                cli.scale = match v.as_str() {
                    "small" => Scale::Small,
                    "paper" => Scale::Paper,
                    other => return Err(format!("unknown scale `{other}`")),
                };
            }
            "--workers" => {
                let v = args.next().ok_or("--workers needs a value")?;
                cli.workers = v.parse().map_err(|_| format!("bad worker count `{v}`"))?;
            }
            "--deadline-ms" => {
                let v = args.next().ok_or("--deadline-ms needs a value")?;
                let ms: u64 = v.parse().map_err(|_| format!("bad deadline `{v}`"))?;
                cli.deadline = Some(Duration::from_millis(ms));
            }
            "--grace-ms" => {
                let v = args.next().ok_or("--grace-ms needs a value")?;
                let ms: u64 = v.parse().map_err(|_| format!("bad grace period `{v}`"))?;
                cli.grace = Some(Duration::from_millis(ms.max(1)));
            }
            "--retries" => {
                let v = args.next().ok_or("--retries needs a value")?;
                let n: u32 = v.parse().map_err(|_| format!("bad retry count `{v}`"))?;
                cli.retries = n.max(1);
            }
            "--backoff-ms" => {
                let v = args.next().ok_or("--backoff-ms needs a value")?;
                let ms: u64 = v.parse().map_err(|_| format!("bad backoff `{v}`"))?;
                cli.backoff = Duration::from_millis(ms);
            }
            "--checkpoint" => {
                let v = args.next().ok_or("--checkpoint needs a path")?;
                cli.checkpoint = Some(PathBuf::from(v));
            }
            "--fsync-every" => {
                let v = args.next().ok_or("--fsync-every needs a value")?;
                let n: usize = v.parse().map_err(|_| format!("bad fsync cadence `{v}`"))?;
                cli.fsync_every = Some(n);
            }
            "--trace" => {
                let v = args.next().ok_or("--trace needs a path")?;
                cli.trace = Some(PathBuf::from(v));
            }
            "--metrics" => cli.metrics = true,
            "--json" => cli.json = true,
            flag if flag.starts_with("--") => return Err(format!("unknown flag `{flag}`")),
            file => cli.files.push(file.to_string()),
        }
    }
    if cli.files.is_empty() {
        return Err("no configuration files given".to_string());
    }
    Ok(cli)
}

/// `harness trace-summary <trace.jsonl>...` — offline phase table for
/// `--trace` logs. Exits 0 on success, 2 on usage/IO errors.
fn run_trace_summary(files: &[String]) -> ! {
    if files.is_empty() {
        eprintln!("error: trace-summary needs at least one trace file");
        eprintln!("usage: harness trace-summary <trace.jsonl>...");
        std::process::exit(2);
    }
    for file in files {
        let text = match std::fs::read_to_string(file) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: cannot read {file}: {e}");
                std::process::exit(2);
            }
        };
        if files.len() > 1 {
            println!("== {file}");
        }
        print!(
            "{}",
            mixp_harness::render_trace_summary(&mixp_harness::summarize_trace(&text))
        );
    }
    std::process::exit(0);
}

/// `harness serve ...` — the campaign daemon. Blocks until a client sends
/// `shutdown`. Exits 0 on a clean stop, 2 on usage/startup errors.
/// Silences backtraces for *injected* fault panics only — the scheduler
/// catches those and turns them into typed `JobError`s, so a multi-tenant
/// daemon must not spam its stderr every time one tenant's faulted job
/// fires. Real panics still print through the previous hook.
fn quiet_injected_panics() {
    let previous = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| info.payload().downcast_ref::<&str>().copied())
            .is_some_and(|s| s.starts_with("injected fault"));
        if !injected {
            previous(info);
        }
    }));
}

fn run_serve(args: &[String]) -> ! {
    let usage = "usage: harness serve --socket PATH --state DIR [--workers N] \
                 [--queue-depth N] [--default-quota N] [--quota TENANT=N]...";
    let mut socket: Option<PathBuf> = None;
    let mut state_dir: Option<PathBuf> = None;
    let mut serve = ServeConfig::default();
    let mut iter = args.iter();
    let fail = |msg: &str| -> ! {
        eprintln!("error: {msg}");
        eprintln!("{usage}");
        std::process::exit(2);
    };
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--socket" => match iter.next() {
                Some(v) => socket = Some(PathBuf::from(v)),
                None => fail("--socket needs a path"),
            },
            "--state" => match iter.next() {
                Some(v) => state_dir = Some(PathBuf::from(v)),
                None => fail("--state needs a directory"),
            },
            "--workers" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => serve.workers = n,
                _ => fail("--workers needs a positive integer"),
            },
            "--queue-depth" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => serve.queue_depth = n,
                _ => fail("--queue-depth needs a positive integer"),
            },
            "--default-quota" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(n) => serve.default_quota = n,
                None => fail("--default-quota needs an integer"),
            },
            "--quota" => {
                let Some((tenant, amount)) = iter.next().and_then(|v| v.split_once('=')) else {
                    fail("--quota needs TENANT=N");
                };
                match amount.parse() {
                    Ok(n) => serve.quotas.push((tenant.to_string(), n)),
                    Err(_) => fail("--quota needs TENANT=N with integer N"),
                }
            }
            other => fail(&format!("unknown serve argument `{other}`")),
        }
    }
    let Some(socket) = socket else {
        fail("--socket is required");
    };
    let Some(state_dir) = state_dir else {
        fail("--state is required");
    };
    let config = DaemonConfig {
        socket,
        state_dir,
        serve,
    };
    quiet_injected_panics();
    match DaemonHandle::start(config) {
        Ok(handle) => {
            handle.wait();
            std::process::exit(0);
        }
        Err(err) => {
            eprintln!("error: cannot start daemon: {err}");
            std::process::exit(2);
        }
    }
}

fn main() {
    // Subcommand dispatch: the first positional argument selects the
    // offline trace consumer or the daemon; everything else is the
    // campaign driver.
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.first().map(String::as_str) == Some("trace-summary") {
        run_trace_summary(&argv[1..]);
    }
    if argv.first().map(String::as_str) == Some("serve") {
        run_serve(&argv[1..]);
    }

    let cli = match parse_cli() {
        Ok(c) => c,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!(
                "usage: harness [--scale small|paper] [--workers N] [--json] \
                 [--deadline-ms MS] [--grace-ms MS] [--retries N] [--backoff-ms MS] \
                 [--checkpoint FILE] [--fsync-every N] [--trace FILE] [--metrics] \
                 <config.yaml>...\n       harness trace-summary <trace.jsonl>...\n       \
                 harness serve --socket PATH --state DIR [--workers N] [--queue-depth N] \
                 [--default-quota N] [--quota TENANT=N]..."
            );
            std::process::exit(2);
        }
    };

    let mut jobs = Vec::new();
    for file in &cli.files {
        let text = match std::fs::read_to_string(file) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: cannot read {file}: {e}");
                std::process::exit(2);
            }
        };
        let cfg = match AnalysisConfig::from_yaml(&text) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("error: {file}: {e}");
                std::process::exit(2);
            }
        };
        let mut job = Job::new(&cfg.benchmark, &cfg.algorithm, cfg.threshold, cli.scale);
        if let Some(budget) = cfg.budget {
            job.budget = budget;
        }
        jobs.push(job);
    }

    // Tracing/metrics are opt-in; the default noop handle records nothing.
    // Wall-clock enrichment is enabled for human-read traces — the logical
    // sequence numbers alone stay deterministic.
    let obs = if cli.trace.is_some() || cli.metrics {
        let mut builder = Obs::builder().wall_clock(true);
        if let Some(path) = &cli.trace {
            builder = builder.trace_path(path.clone());
        }
        match builder.build() {
            Ok(obs) => obs,
            Err(e) => {
                eprintln!("warning: cannot open trace file: {e}; tracing disabled");
                Obs::noop()
            }
        }
    } else {
        Obs::noop()
    };

    let defaults = CampaignOptions::default();
    let opts = CampaignOptions {
        workers: cli.workers,
        deadline: cli.deadline,
        grace: cli.grace.unwrap_or(defaults.grace),
        retry: RetryPolicy {
            max_attempts: cli.retries,
            backoff: cli.backoff,
            ..RetryPolicy::default()
        },
        checkpoint: cli.checkpoint.clone(),
        fsync_every: cli.fsync_every.unwrap_or(defaults.fsync_every),
        obs: obs.clone(),
        ..defaults
    };
    let (outcomes, stats) = run_campaign_with_stats(&jobs, &opts);
    let metrics: Option<MetricsSnapshot> = obs.metrics_snapshot();
    let failures = outcomes.iter().filter(|o| o.outcome.is_err()).count();

    if cli.json {
        println!(
            "{}",
            interchange::outcomes_to_json_full(&outcomes, Some(&stats), metrics.as_ref())
        );
    } else {
        let rows: Vec<Vec<String>> = outcomes
            .iter()
            .map(|o| match &o.outcome {
                Ok(r) => vec![
                    r.benchmark.clone(),
                    r.algorithm.clone(),
                    format!("{:.0e}", r.threshold),
                    fmt_speedup(r.result.speedup()),
                    fmt_quality(r.result.quality()),
                    fmt_evaluated(r),
                ],
                Err(_) => vec![
                    o.job.benchmark.clone(),
                    o.job.algorithm.clone(),
                    format!("{:.0e}", o.job.threshold),
                    fmt_failed(o).unwrap_or_default(),
                    "-".to_string(),
                    "-".to_string(),
                ],
            })
            .collect();
        print!(
            "{}",
            render_table(
                &["Benchmark", "Algorithm", "Threshold", "Speedup", "Quality", "Evaluated"],
                &rows
            )
        );
        println!(
            "shared evaluation cache: {} hits, {} misses",
            stats.shared_cache_hits, stats.shared_cache_misses
        );
        if cli.metrics {
            match &metrics {
                Some(snap) if !snap.is_empty() => {
                    print!("{}", mixp_harness::report::metrics_footer(snap));
                }
                _ => println!("campaign metrics: (none recorded)"),
            }
        }
        for o in &outcomes {
            if let Err(e) = &o.outcome {
                eprintln!(
                    "failed: {} / {} after {} attempt(s): {e}",
                    o.job.benchmark, o.job.algorithm, o.attempts
                );
            }
        }
    }

    if failures > 0 {
        eprintln!("{failures} of {} cells failed", outcomes.len());
        std::process::exit(3);
    }
}
