//! `loadgen` — a synthetic multi-tenant client fleet for the campaign
//! daemon, and the service's end-to-end correctness gauntlet.
//!
//! It spawns a real `harness serve` daemon (a child process, found next to
//! this binary), then drives it with concurrent clients submitting a mixed
//! workload: clean campaigns, fault-injected campaigns, deadline
//! campaigns, immediate cancellations, quota pressure on one tenant and
//! deliberate queue-depth pressure on everyone. Partway through it
//! `SIGKILL`s the daemon and restarts it on the same state directory;
//! clients ride out the outage by reconnecting and resubmitting under
//! their idempotency keys.
//!
//! At the end it verifies, and exits non-zero if any of this fails:
//!
//! * every admitted campaign reached a terminal state (`done` or
//!   `cancelled`) — nothing is lost across the kill;
//! * per-tenant quota accounting is **exact**: the daemon's reported
//!   `used` equals the sum of admitted campaign costs the clients counted
//!   (idempotency keys make this well-defined across the restart);
//! * at least one `quota-exceeded` and one `queue-full` rejection was
//!   observed (the admission gates actually engaged);
//! * a sample of no-deadline campaigns re-run directly through
//!   [`mixp_harness::run_campaign`] produces **bit-identical** outcomes
//!   (speedup/quality compared by f64 bits, plus evaluated/dnf).
//!
//! `MIXP_LOADGEN_QUICK=1` shrinks the run (fewer campaigns, same shape)
//! for CI smoke use; the default run submits ≥1000 campaigns from 8
//! clients across 4 tenants.

use mixp_core::synth::SplitMix64;
use mixp_harness::checkpoint::{compact, result_doc};
use mixp_harness::json::Json;
use mixp_harness::scheduler::{run_campaign, CampaignOptions, RetryPolicy};
use mixp_harness::{Fault, FaultPlan, Job, Scale};
use mixp_serve::protocol::{submit_line, FaultSpec, SubmitOptions};
use mixp_serve::Client;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

const BENCHMARKS: &[&str] = &["tridiag", "innerprod", "eos", "hydro-1d"];
const ALGORITHMS: &[&str] = &["DD", "CM", "CB"];
const TENANTS: usize = 4;
const CLIENTS: usize = 8;

/// Overall wall-clock budget; blowing it means the service lost work.
const RUN_TIMEOUT: Duration = Duration::from_secs(900);

struct Plan {
    campaigns_per_client: usize,
    /// Kill the daemon once this many campaigns were admitted.
    kill_after: usize,
    queue_depth: usize,
    /// The constrained tenant's quota (others get a huge default).
    tight_quota: usize,
    workers: usize,
}

fn plan() -> Plan {
    let quick = std::env::var("MIXP_LOADGEN_QUICK").is_ok_and(|v| v == "1");
    if quick {
        Plan {
            campaigns_per_client: 16, // 128 total
            kill_after: 32,
            queue_depth: 12,
            tight_quota: 180,
            workers: 4,
        }
    } else {
        Plan {
            campaigns_per_client: 125, // 1000 total
            kill_after: 250,
            queue_depth: 24,
            tight_quota: 1200,
            workers: 4,
        }
    }
}

/// One client's description of a campaign it submitted.
struct Submitted {
    id: u64,
    key: String,
    tenant: usize,
    jobs: Vec<Job>,
    options: SubmitOptions,
    cancelled: bool,
}

/// What each client thread reports back.
#[derive(Default)]
struct ClientReport {
    /// (tenant index, cost) for every campaign counted exactly once.
    charges: Vec<(usize, usize)>,
    quota_rejections: usize,
    queue_full_rejections: usize,
    reconnects: usize,
    campaigns: Vec<Submitted>,
    streamed_records: usize,
}

/// A client that transparently reconnects and retries around the daemon
/// kill. Requests are idempotent by construction (submit carries a key;
/// status/cancel/list are reads or idempotent verbs).
struct RetryClient {
    socket: PathBuf,
    client: Option<Client>,
    reconnects: usize,
}

impl RetryClient {
    fn new(socket: &Path) -> RetryClient {
        RetryClient {
            socket: socket.to_path_buf(),
            client: None,
            reconnects: 0,
        }
    }

    fn request(&mut self, line: &str) -> Json {
        let deadline = Instant::now() + Duration::from_secs(120);
        loop {
            if self.client.is_none() {
                match Client::connect_within(&self.socket, Duration::from_secs(60)) {
                    Ok(client) => {
                        self.client = Some(client);
                        self.reconnects += 1;
                    }
                    Err(err) => panic!("loadgen: cannot reach daemon: {err}"),
                }
            }
            match self.client.as_mut().expect("just connected").request(line) {
                Ok(doc) => return doc,
                Err(_) if Instant::now() < deadline => {
                    // The daemon died mid-request (the kill) — reconnect.
                    self.client = None;
                    std::thread::sleep(Duration::from_millis(25));
                }
                Err(err) => panic!("loadgen: request never succeeded: {err}"),
            }
        }
    }
}

fn spawn_daemon(harness: &Path, socket: &Path, state: &Path, plan: &Plan) -> Child {
    let mut quotas = Vec::new();
    // Tenant t3 is the constrained one; the rest share a huge default.
    quotas.push(format!("t{}={}", TENANTS - 1, plan.tight_quota));
    let mut cmd = Command::new(harness);
    cmd.arg("serve")
        .arg("--socket")
        .arg(socket)
        .arg("--state")
        .arg(state)
        .arg("--workers")
        .arg(plan.workers.to_string())
        .arg("--queue-depth")
        .arg(plan.queue_depth.to_string())
        .arg("--default-quota")
        .arg((1usize << 30).to_string());
    for quota in quotas {
        cmd.arg("--quota").arg(quota);
    }
    cmd.stdout(Stdio::null()).stdin(Stdio::null());
    match cmd.spawn() {
        Ok(child) => child,
        Err(err) => panic!("loadgen: cannot spawn daemon: {err}"),
    }
}

/// Deterministically generates client `c`'s `n`-th campaign.
fn make_campaign(c: usize, n: usize) -> (usize, Vec<Job>, SubmitOptions) {
    let mut rng = SplitMix64::new(0x10AD_0000 + (c as u64) * 10_007 + n as u64);
    let tenant = (rng.next_range(TENANTS as u64)) as usize;
    let job_count = 1 + rng.next_range(2) as usize;
    let jobs: Vec<Job> = (0..job_count)
        .map(|_| {
            let mut job = Job::new(
                BENCHMARKS[rng.next_range(BENCHMARKS.len() as u64) as usize],
                ALGORITHMS[rng.next_range(ALGORITHMS.len() as u64) as usize],
                1e-3,
                Scale::Small,
            );
            job.budget = 4 + rng.next_range(8) as usize;
            job
        })
        .collect();
    let mut options = SubmitOptions::default();
    // Client 0's first campaign is the subscription probe: slow, clean and
    // never cancelled (0 % 20 != 7), so the stream provably runs while a
    // subscriber is attached.
    if c == 0 && n == 0 {
        options.faults.push(FaultSpec {
            job: 0,
            fault: Fault::SlowMs(40),
            attempts: u32::MAX,
        });
        return (tenant, jobs, options);
    }
    let roll = rng.next_range(100);
    if roll < 10 {
        // Transient fault on the first attempt; one retry heals it.
        options.retries = Some(2);
        options.faults.push(FaultSpec {
            job: 0,
            fault: Fault::Panic { at_eval: 0 },
            attempts: 1,
        });
    } else if roll < 15 {
        // Permanent numerical poison — a typed non-finite failure.
        options.faults.push(FaultSpec {
            job: 0,
            fault: Fault::NanOutput { from_eval: 0 },
            attempts: u32::MAX,
        });
    } else if roll < 17 {
        // Deadline campaign: a hang the watchdog has to cut short.
        // Wall-clock-shaped, so excluded from the bit-identity sample.
        options.deadline_ms = Some(150);
        options.faults.push(FaultSpec {
            job: 0,
            fault: Fault::HangMs(5_000),
            attempts: u32::MAX,
        });
    }
    (tenant, jobs, options)
}

fn run_client(
    c: usize,
    socket: &Path,
    plan: &Plan,
    admitted_counter: &AtomicUsize,
) -> ClientReport {
    let mut report = ClientReport::default();
    let mut rc = RetryClient::new(socket);
    for n in 0..plan.campaigns_per_client {
        let (tenant, jobs, options) = make_campaign(c, n);
        let key = format!("c{c}-n{n}");
        let line = submit_line(&format!("t{tenant}"), Some(&key), &jobs, &options);
        let id = loop {
            let doc = rc.request(&line);
            if doc.get("ok") == Some(&Json::Bool(true)) {
                let id = doc
                    .get("id")
                    .and_then(Json::as_f64)
                    .expect("ok submit carries an id") as u64;
                // Exactly-once accounting: the idempotency key guarantees
                // one charge even if the request was resubmitted after the
                // kill (a `duplicate:true` ack is the same admission).
                report
                    .charges
                    .push((tenant, jobs.iter().map(|j| j.budget).sum()));
                break Some(id);
            }
            let kind = doc
                .get("error")
                .and_then(|e| e.get("kind"))
                .and_then(Json::as_str)
                .unwrap_or("");
            match kind {
                "queue-full" => {
                    report.queue_full_rejections += 1;
                    std::thread::sleep(Duration::from_millis(40));
                }
                "quota-exceeded" => {
                    report.quota_rejections += 1;
                    break None;
                }
                other => panic!("loadgen: unexpected rejection `{other}`: {doc:?}"),
            }
        };
        let Some(id) = id else { continue };
        admitted_counter.fetch_add(1, Ordering::SeqCst);
        let mut cancelled = false;
        if n % 20 == 7 {
            let doc = rc.request(&mixp_serve::protocol::id_line("cancel", id));
            cancelled = doc.get("ok") == Some(&Json::Bool(true));
        }
        report.campaigns.push(Submitted {
            id,
            key,
            tenant,
            jobs,
            options,
            cancelled,
        });
        // Client 0 live-streams its very first campaign: protocol coverage
        // for subscribe under load (dedicated connection so the submit
        // loop keeps flowing — a subscription owns its connection).
        if c == 0 && n == 0 {
            if let Ok(mut sub) = Client::connect_within(&rc.socket, Duration::from_secs(10)) {
                let mut records = 0usize;
                if let Ok(trailer) = sub.subscribe(id, |_record| records += 1) {
                    assert_eq!(
                        trailer.get("done"),
                        Some(&Json::Bool(true)),
                        "subscription must end with a done trailer"
                    );
                    assert!(records > 0, "live subscription streamed nothing");
                }
                report.streamed_records = records;
            }
        }
    }
    // Wait for every admitted campaign to reach a terminal state.
    let deadline = Instant::now() + RUN_TIMEOUT;
    let mut pending: Vec<u64> = report.campaigns.iter().map(|s| s.id).collect();
    while !pending.is_empty() {
        assert!(
            Instant::now() < deadline,
            "loadgen: campaigns stuck non-terminal: {pending:?}"
        );
        pending.retain(|id| {
            let doc = rc.request(&mixp_serve::protocol::id_line("status", *id));
            let state = doc.get("state").and_then(Json::as_str).unwrap_or("");
            !matches!(state, "done" | "cancelled")
        });
        if !pending.is_empty() {
            std::thread::sleep(Duration::from_millis(60));
        }
    }
    report.reconnects = rc.reconnects;
    report
}

/// Re-runs a submitted campaign directly through the scheduler and
/// compares per-cell outcome documents bit-for-bit with what the service
/// reported.
fn verify_bit_identity(rc: &mut RetryClient, submitted: &Submitted) {
    let doc = rc.request(&mixp_serve::protocol::id_line("status", submitted.id));
    let cells = doc
        .get("cells")
        .and_then(Json::as_array)
        .unwrap_or_else(|| panic!("status without cells: {doc:?}"));
    let mut faults = FaultPlan::new();
    for spec in &submitted.options.faults {
        faults = faults.inject(spec.job, spec.fault, spec.attempts);
    }
    let opts = CampaignOptions {
        workers: 1,
        retry: RetryPolicy::attempts(submitted.options.retries.unwrap_or(1)),
        faults,
        ..CampaignOptions::default()
    };
    let direct = run_campaign(&submitted.jobs, &opts);
    for (index, (cell, outcome)) in cells.iter().zip(&direct).enumerate() {
        let state = cell.get("state").and_then(Json::as_str).unwrap_or("");
        match (&outcome.outcome, state) {
            (Ok(result), "done") => {
                let expected = result_doc(index, &submitted.jobs[index], result);
                let Json::Object(expected) = expected else {
                    unreachable!()
                };
                for (field, want) in &expected {
                    if field == "job" {
                        continue;
                    }
                    let got = cell.get(field);
                    assert_eq!(
                        got.map(compact),
                        Some(compact(want)),
                        "campaign {} cell {index} field `{field}` diverged \
                         (service vs direct run)",
                        submitted.id
                    );
                }
            }
            (Err(error), "failed") => {
                let got = cell.get("code").and_then(Json::as_str).unwrap_or("");
                assert_eq!(
                    got,
                    error.code(),
                    "campaign {} cell {index} failure code diverged",
                    submitted.id
                );
            }
            (_, other) => panic!(
                "campaign {} cell {index}: direct run {:?} vs service state `{other}`",
                submitted.id,
                outcome.outcome.as_ref().map(|_| "ok")
            ),
        }
    }
}

/// The bit-identity phase re-runs faulted campaigns in-process; injected
/// panics are expected data there, so keep their backtraces off stderr
/// (real panics still print).
fn quiet_injected_panics() {
    let previous = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| info.payload().downcast_ref::<&str>().copied())
            .is_some_and(|s| s.starts_with("injected fault"));
        if !injected {
            previous(info);
        }
    }));
}

fn main() {
    quiet_injected_panics();
    let plan = plan();
    let total = plan.campaigns_per_client * CLIENTS;
    let harness = std::env::current_exe()
        .expect("own path")
        .parent()
        .expect("bin dir")
        .join("harness");
    assert!(
        harness.exists(),
        "loadgen: harness binary not found at {} (build the workspace first)",
        harness.display()
    );
    let arena = std::env::temp_dir().join(format!("mixp-loadgen-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&arena);
    std::fs::create_dir_all(&arena).expect("create arena");
    let socket = arena.join("serve.sock");
    let state = arena.join("state");

    println!(
        "loadgen: {total} campaigns, {CLIENTS} clients, {TENANTS} tenants, \
         kill after {} admissions",
        plan.kill_after
    );
    let mut child = spawn_daemon(&harness, &socket, &state, &plan);

    let admitted = Arc::new(AtomicUsize::new(0));
    let reports: Arc<Mutex<Vec<ClientReport>>> = Arc::new(Mutex::new(Vec::new()));
    std::thread::scope(|scope| {
        for c in 0..CLIENTS {
            let socket = socket.clone();
            let plan = &plan;
            let admitted = Arc::clone(&admitted);
            let reports = Arc::clone(&reports);
            scope.spawn(move || {
                let report = run_client(c, &socket, plan, &admitted);
                reports.lock().expect("reports lock").push(report);
            });
        }
        // The coordinator: wait until enough campaigns are admitted, then
        // SIGKILL the daemon and restart it on the same state directory.
        let kill_deadline = Instant::now() + RUN_TIMEOUT;
        while admitted.load(Ordering::SeqCst) < plan.kill_after {
            assert!(
                Instant::now() < kill_deadline,
                "loadgen: never reached the kill threshold ({} admitted)",
                admitted.load(Ordering::SeqCst)
            );
            std::thread::sleep(Duration::from_millis(20));
        }
        println!(
            "loadgen: SIGKILL after {} admissions; restarting",
            admitted.load(Ordering::SeqCst)
        );
        child.kill().expect("kill daemon");
        let _ = child.wait();
        child = spawn_daemon(&harness, &socket, &state, &plan);
    });

    // All clients done: their campaigns are terminal. Final audit.
    let reports = Arc::try_unwrap(reports)
        .unwrap_or_else(|_| panic!("client thread leaked its report handle"))
        .into_inner()
        .expect("reports lock");
    assert_eq!(reports.len(), CLIENTS);
    let mut rc = RetryClient::new(&socket);

    // 1. Exact quota accounting, tenant by tenant.
    let mut expected_used: BTreeMap<String, usize> = BTreeMap::new();
    for report in &reports {
        for (tenant, cost) in &report.charges {
            *expected_used.entry(format!("t{tenant}")).or_default() += cost;
        }
    }
    let listing = rc.request(&mixp_serve::protocol::list_line(None));
    let tenants = listing
        .get("tenants")
        .and_then(Json::as_array)
        .expect("list carries tenants");
    let mut audited = 0usize;
    for entry in tenants {
        let name = entry.get("tenant").and_then(Json::as_str).expect("name");
        let used = entry.get("used").and_then(Json::as_f64).expect("used") as usize;
        let expected = expected_used.get(name).copied().unwrap_or(0);
        assert_eq!(
            used, expected,
            "tenant {name}: daemon reports {used} used, clients counted {expected}"
        );
        audited += 1;
    }
    assert!(audited >= TENANTS, "expected every tenant in the ledger");

    // 2. Every admitted campaign is terminal (already polled per client);
    //    double-check through the daemon's own listing.
    let campaigns = listing
        .get("campaigns")
        .and_then(Json::as_array)
        .expect("list carries campaigns");
    let non_terminal = campaigns
        .iter()
        .filter(|c| {
            let state = c.get("state").and_then(Json::as_str).unwrap_or("");
            !matches!(state, "done" | "cancelled")
        })
        .count();
    assert_eq!(non_terminal, 0, "non-terminal campaigns after drain");

    // 3. The admission gates actually engaged.
    let quota_rejections: usize = reports.iter().map(|r| r.quota_rejections).sum();
    let queue_full: usize = reports.iter().map(|r| r.queue_full_rejections).sum();
    let cancelled: usize = reports
        .iter()
        .flat_map(|r| &r.campaigns)
        .filter(|s| s.cancelled)
        .count();
    assert!(quota_rejections > 0, "tight tenant never hit its quota");
    assert!(queue_full > 0, "queue depth never engaged");
    assert!(cancelled > 0, "no campaign was cancelled");

    // 4. Bit-identity spot check: re-run a sample of no-deadline campaigns
    //    directly and compare outcome documents field by field.
    let mut verified = 0usize;
    for submitted in reports
        .iter()
        .flat_map(|r| &r.campaigns)
        .filter(|s| s.options.deadline_ms.is_none() && !s.cancelled)
        .take(25)
    {
        verify_bit_identity(&mut rc, submitted);
        verified += 1;
    }
    assert!(verified >= 10, "bit-identity sample too small: {verified}");

    // Idempotency keys stay recorded across the restart: resubmitting any
    // known key must dedupe, not double-charge.
    let sample = reports
        .iter()
        .flat_map(|r| &r.campaigns)
        .next()
        .expect("at least one campaign");
    let doc = rc.request(&submit_line(
        &format!("t{}", sample.tenant),
        Some(&sample.key),
        &sample.jobs,
        &sample.options,
    ));
    assert_eq!(
        doc.get("duplicate"),
        Some(&Json::Bool(true)),
        "resubmitted key must dedupe: {doc:?}"
    );

    // Graceful shutdown; the daemon must exit cleanly.
    let _ = rc.request(&mixp_serve::protocol::shutdown_line());
    let status = child.wait().expect("daemon wait");
    assert!(status.success(), "daemon exited with {status:?}");
    let _ = std::fs::remove_dir_all(&arena);

    let reconnects: usize = reports.iter().map(|r| r.reconnects).sum();
    println!(
        "loadgen: OK — {} campaigns admitted, {quota_rejections} quota rejections, \
         {queue_full} queue-full rejections, {cancelled} cancelled, \
         {verified} bit-verified, {reconnects} (re)connects, \
         {} streamed records",
        admitted.load(Ordering::SeqCst),
        reports.iter().map(|r| r.streamed_records).sum::<usize>()
    );
}
