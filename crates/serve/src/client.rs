//! A small blocking client for the campaign service — the library the
//! load generator and the integration tests drive the daemon with.
//!
//! One [`Client`] wraps one connection. Every method writes one request
//! line and reads one response line; [`Client::subscribe`] additionally
//! consumes the stream until the terminal trailer. Responses come back as
//! parsed [`Json`] documents — interpreting `{"ok":false,...}` is the
//! caller's business, because tests *want* to see typed rejections.

use crate::protocol::{id_line, list_line, shutdown_line, submit_line, SubmitOptions};
use mixp_harness::json::{parse, Json};
use mixp_harness::Job;
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::time::{Duration, Instant};

/// One connection to a running daemon.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<UnixStream>,
    writer: UnixStream,
}

impl Client {
    /// Connects to the daemon's socket.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the socket is absent or refuses.
    pub fn connect(socket: &Path) -> std::io::Result<Client> {
        let stream = UnixStream::connect(socket)?;
        let read_half = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(read_half),
            writer: stream,
        })
    }

    /// Connects, retrying until `timeout` elapses — for racing a daemon
    /// that is still binding its socket (or restarting after a kill).
    ///
    /// # Errors
    ///
    /// Returns the last connection error once the timeout is spent.
    pub fn connect_within(socket: &Path, timeout: Duration) -> std::io::Result<Client> {
        let deadline = Instant::now() + timeout;
        loop {
            match Client::connect(socket) {
                Ok(client) => return Ok(client),
                Err(err) if Instant::now() >= deadline => return Err(err),
                Err(_) => std::thread::sleep(Duration::from_millis(10)),
            }
        }
    }

    /// Sends one raw line (no newline) and reads one response line.
    ///
    /// # Errors
    ///
    /// I/O errors from the socket, or `UnexpectedEof` if the daemon hung
    /// up, or `InvalidData` if the response is not one JSON document.
    pub fn request(&mut self, line: &str) -> std::io::Result<Json> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        self.read_response()
    }

    fn read_response(&mut self) -> std::io::Result<Json> {
        let mut response = String::new();
        if self.reader.read_line(&mut response)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "daemon closed the connection",
            ));
        }
        parse(response.trim_end()).map_err(|e| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("unparseable response: {} ({response:?})", e.message),
            )
        })
    }

    /// Submits a campaign. The response is `{"ok":true,"id":N,
    /// "duplicate":bool}` or a typed rejection.
    ///
    /// # Errors
    ///
    /// Socket-level errors only; rejections are in the returned document.
    pub fn submit(
        &mut self,
        tenant: &str,
        key: Option<&str>,
        jobs: &[Job],
        options: &SubmitOptions,
    ) -> std::io::Result<Json> {
        self.request(&submit_line(tenant, key, jobs, options))
    }

    /// Fetches a campaign's state and per-cell outcomes.
    ///
    /// # Errors
    ///
    /// Socket-level errors only.
    pub fn status(&mut self, id: u64) -> std::io::Result<Json> {
        self.request(&id_line("status", id))
    }

    /// Requests cancellation.
    ///
    /// # Errors
    ///
    /// Socket-level errors only.
    pub fn cancel(&mut self, id: u64) -> std::io::Result<Json> {
        self.request(&id_line("cancel", id))
    }

    /// Lists campaigns and tenant ledgers.
    ///
    /// # Errors
    ///
    /// Socket-level errors only.
    pub fn list(&mut self, tenant: Option<&str>) -> std::io::Result<Json> {
        self.request(&list_line(tenant))
    }

    /// Asks the daemon to shut down gracefully.
    ///
    /// # Errors
    ///
    /// Socket-level errors only.
    pub fn shutdown(&mut self) -> std::io::Result<Json> {
        self.request(&shutdown_line())
    }

    /// Subscribes to a campaign and consumes its record stream, handing
    /// each streamed observability record to `on_record`, until the
    /// `{"done":true,...}` trailer arrives; returns the trailer. On a
    /// rejection (e.g. unknown campaign) the error document is returned
    /// immediately and nothing streams.
    ///
    /// # Errors
    ///
    /// Socket-level errors only.
    pub fn subscribe(
        &mut self,
        id: u64,
        mut on_record: impl FnMut(&str),
    ) -> std::io::Result<Json> {
        let ack = self.request(&id_line("subscribe", id))?;
        if ack.get("ok") != Some(&Json::Bool(true)) {
            return Ok(ack);
        }
        loop {
            let mut record = String::new();
            if self.reader.read_line(&mut record)? == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "daemon closed the stream mid-subscription",
                ));
            }
            let trimmed = record.trim_end();
            if let Ok(doc) = parse(trimmed) {
                if doc.get("done") == Some(&Json::Bool(true)) {
                    return Ok(doc);
                }
            }
            on_record(trimmed);
        }
    }
}
