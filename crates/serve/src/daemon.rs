//! The campaign daemon: a Unix-domain-socket server multiplexing many
//! tenants' campaigns over one shared work-stealing pool.
//!
//! # Thread budget
//!
//! The daemon owns exactly three kinds of threads:
//!
//! * the **accept loop** (one thread), polling a non-blocking
//!   [`UnixListener`] so it can notice shutdown;
//! * one **connection thread** per live client connection, blocking on
//!   line reads (it exits when the peer closes);
//! * the **dispatcher** (one thread), which drains the queue in waves on
//!   the shared [`Pool`] — the same pool nested evaluator batches join, so
//!   total compute threads stay capped at `workers` no matter how many
//!   campaigns are in flight. Campaigns with a deadline additionally hold
//!   one [`Watchdog`] supervisor thread for their lifetime.
//!
//! # Dispatch waves
//!
//! The dispatcher repeatedly asks the state machine for a wave of up to
//! `workers` cells ([`ServiceState::pick_wave`] — round-robin across
//! tenants), runs the wave with [`Pool::run_batch`]/[`run_cell`], then
//! records and journals every outcome before picking the next wave.
//! Each cell executes with *its own campaign's* options, shared evaluation
//! cache and watchdog, so outcomes are bit-identical to what
//! `run_campaign` would report for that campaign alone. Cancellation is
//! therefore wave-granular: cancelled cells never dispatch, in-flight
//! cells finish and are recorded.
//!
//! A `SIGKILL` between a cell finishing and the post-wave journal append
//! loses at most that wave's outcomes — the cells simply re-run after
//! restart, deterministically.
//!
//! # Progress streaming
//!
//! Every campaign runs under an [`Obs`] handle whose sink forwards each
//! rendered record to the campaign's subscribers ([`Sink::Forward`] —
//! `mixp-obs` renders the line once, the callback fans it out). With no
//! subscribers the callback drops the line after one atomic load. Tracing
//! never changes outcomes, so streaming is free of result skew by
//! construction.

use crate::journal::QueueJournal;
use crate::protocol::{
    error_line, ok_line, parse_request, scale_tag, Request, RejectKind, MAX_LINE_BYTES,
};
use crate::state::{Admission, Campaign, CellSlot, ServeConfig, ServiceState, Terminal, WaveCell};
use mixp_core::Obs;
use mixp_harness::checkpoint::{compact, failure_doc, result_doc};
use mixp_harness::json::Json;
use mixp_harness::scheduler::{run_cell, CampaignOptions, RetryPolicy};
use mixp_harness::{FaultPlan, SharedEvalCache, Watchdog};
use mixp_pool::Pool;
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Per-subscriber stream buffer (records). A subscriber that cannot keep
/// up loses intermediate records (lossy streaming), never blocks a worker.
const SUBSCRIBER_BUFFER: usize = 1024;

/// How long the accept loop and an idle dispatcher sleep between checks.
const POLL_INTERVAL: Duration = Duration::from_millis(20);

/// Everything the daemon's threads share.
struct Shared {
    state: Mutex<ServiceState>,
    /// Wakes the dispatcher when work arrives or shutdown is requested.
    work: Condvar,
    journal: Mutex<QueueJournal>,
    /// Per-campaign live resources, created at first dispatch, dropped at
    /// terminal.
    runtimes: Mutex<BTreeMap<u64, CampaignRuntime>>,
    /// Per-campaign subscriber channels. Dropping a campaign's senders is
    /// what ends its subscribers' streams.
    subscribers: Mutex<BTreeMap<u64, Vec<SyncSender<String>>>>,
    /// Graceful-stop flag: refuse new work, finish the in-flight wave,
    /// sync, exit.
    stop: AtomicBool,
    pool: Pool,
}

/// One live campaign's execution resources.
struct CampaignRuntime {
    opts: Arc<CampaignOptions>,
    cache: Option<Arc<SharedEvalCache>>,
    watchdog: Option<Arc<Watchdog>>,
}

/// Daemon configuration: where to listen, where to persist, how to admit.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Unix-domain socket path (created at start, removed at stop).
    pub socket: PathBuf,
    /// State directory holding the queue journal (`queue.jsonl`).
    pub state_dir: PathBuf,
    /// Admission/fairness configuration.
    pub serve: ServeConfig,
}

/// A running daemon. Obtain with [`DaemonHandle::start`]; stop gracefully
/// with [`DaemonHandle::stop`] or block on a client-issued `shutdown` with
/// [`DaemonHandle::wait`].
pub struct DaemonHandle {
    shared: Arc<Shared>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    dispatch_thread: Option<std::thread::JoinHandle<()>>,
    socket: PathBuf,
}

impl DaemonHandle {
    /// Binds the socket, replays the queue journal, and spawns the accept
    /// loop and the dispatcher. Campaigns interrupted by a previous kill
    /// resume dispatching immediately.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the state directory, journal or
    /// socket cannot be set up.
    pub fn start(config: DaemonConfig) -> std::io::Result<DaemonHandle> {
        std::fs::create_dir_all(&config.state_dir)?;
        let (journal, restored) = QueueJournal::open(&config.state_dir.join("queue.jsonl"))?;
        let mut state = ServiceState::new(config.serve.clone());
        for campaign in restored {
            state.restore(campaign);
        }
        // A stale socket file from a killed daemon would make bind fail.
        let _ = std::fs::remove_file(&config.socket);
        let listener = UnixListener::bind(&config.socket)?;
        listener.set_nonblocking(true)?;
        let workers = config.serve.workers.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(state),
            work: Condvar::new(),
            journal: Mutex::new(journal),
            runtimes: Mutex::new(BTreeMap::new()),
            subscribers: Mutex::new(BTreeMap::new()),
            stop: AtomicBool::new(false),
            pool: Pool::new(workers, Obs::noop()),
        });
        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::Builder::new()
            .name("serve-accept".to_string())
            .spawn(move || accept_loop(&listener, &accept_shared))?;
        let dispatch_shared = Arc::clone(&shared);
        let dispatch_thread = std::thread::Builder::new()
            .name("serve-dispatch".to_string())
            .spawn(move || dispatch_loop(&dispatch_shared))?;
        Ok(DaemonHandle {
            shared,
            accept_thread: Some(accept_thread),
            dispatch_thread: Some(dispatch_thread),
            socket: config.socket,
        })
    }

    /// Blocks until the daemon stops (a client sent `shutdown`, or
    /// [`DaemonHandle::stop`] ran on another handle path), then cleans up
    /// the socket file.
    pub fn wait(mut self) {
        self.join();
    }

    /// Requests a graceful stop and blocks until the daemon is down: the
    /// in-flight wave finishes, the journal is synced, the socket file is
    /// removed. Admitted-but-unfinished campaigns stay in the journal and
    /// resume on the next start.
    pub fn stop(mut self) {
        self.shared.request_stop();
        self.join();
    }

    fn join(&mut self) {
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        if let Some(t) = self.dispatch_thread.take() {
            let _ = t.join();
        }
        let _ = std::fs::remove_file(&self.socket);
    }
}

impl Drop for DaemonHandle {
    fn drop(&mut self) {
        self.shared.request_stop();
        self.join();
    }
}

impl Shared {
    fn request_stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
        // Nudge the dispatcher out of its condvar wait.
        let _guard = lock(&self.state);
        self.work.notify_all();
    }

    /// Drops a terminal campaign's live resources and closes its
    /// subscriber streams.
    fn finalize_campaign(&self, id: u64) {
        if let Some(runtime) = lock(&self.runtimes).remove(&id) {
            drop(runtime);
        }
        lock(&self.subscribers).remove(&id);
    }
}

/// Locks a mutex, recovering from a poisoned lock (a panicking connection
/// thread must not wedge the daemon).
fn lock<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn accept_loop(listener: &UnixListener, shared: &Arc<Shared>) {
    while !shared.stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _addr)) => {
                let shared = Arc::clone(shared);
                // Connection threads are detached: they exit when the peer
                // hangs up (or shortly after stop, once their read ends).
                let spawned = std::thread::Builder::new()
                    .name("serve-conn".to_string())
                    .spawn(move || serve_connection(stream, &shared));
                if let Err(err) = spawned {
                    eprintln!("warning: connection thread spawn failed: {err}");
                }
            }
            Err(err) if err.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(POLL_INTERVAL);
            }
            Err(err) => {
                eprintln!("warning: accept failed: {err}");
                std::thread::sleep(POLL_INTERVAL);
            }
        }
    }
}

/// The per-connection request/response loop. Malformed lines answer with
/// `bad-request` and keep the connection open; an oversized line or EOF
/// closes it.
fn serve_connection(stream: UnixStream, shared: &Arc<Shared>) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    let mut buffer = Vec::new();
    loop {
        buffer.clear();
        match read_bounded_line(&mut reader, &mut buffer) {
            Ok(0) => return, // EOF
            Ok(_) => {}
            Err(_) => {
                let _ = send_line(
                    &mut writer,
                    &error_line(RejectKind::BadRequest, "request line too long"),
                );
                return;
            }
        }
        let line = String::from_utf8_lossy(&buffer);
        let trimmed = line.trim_end_matches(['\n', '\r']);
        if trimmed.is_empty() {
            continue;
        }
        let request = match parse_request(trimmed) {
            Ok(request) => request,
            Err(reason) => {
                if send_line(&mut writer, &error_line(RejectKind::BadRequest, &reason)).is_err() {
                    return;
                }
                continue;
            }
        };
        let keep_going = match request {
            Request::Submit {
                tenant,
                key,
                jobs,
                options,
            } => {
                let response = handle_submit(shared, &tenant, key, jobs, options);
                send_line(&mut writer, &response).is_ok()
            }
            Request::Status { id } => {
                let response = {
                    let state = lock(&shared.state);
                    match state.campaign(id) {
                        None => error_line(RejectKind::UnknownCampaign, &format!("no campaign {id}")),
                        Some(campaign) => ok_line(campaign_doc(campaign, true)),
                    }
                };
                send_line(&mut writer, &response).is_ok()
            }
            Request::Subscribe { id } => {
                // Takes over the connection until the campaign is terminal.
                serve_subscription(shared, &mut writer, id).is_ok()
            }
            Request::Cancel { id } => {
                let response = handle_cancel(shared, id);
                send_line(&mut writer, &response).is_ok()
            }
            Request::List { tenant } => {
                let response = {
                    let state = lock(&shared.state);
                    list_doc(&state, tenant.as_deref())
                };
                send_line(&mut writer, &ok_line(response)).is_ok()
            }
            Request::Shutdown => {
                let _ = send_line(&mut writer, &ok_line(vec![]));
                shared.request_stop();
                false
            }
        };
        if !keep_going {
            return;
        }
    }
}

/// `BufRead::read_until` with a hard byte bound: a peer streaming an
/// unterminated line cannot balloon daemon memory.
fn read_bounded_line(reader: &mut impl BufRead, line: &mut Vec<u8>) -> std::io::Result<usize> {
    let mut total = 0usize;
    loop {
        let available = match reader.fill_buf() {
            Ok(buf) => buf,
            Err(err) if err.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(err) => return Err(err),
        };
        if available.is_empty() {
            return Ok(total);
        }
        let newline = available.iter().position(|b| *b == b'\n');
        let take = newline.map_or(available.len(), |i| i + 1);
        if total + take > MAX_LINE_BYTES {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "request line exceeds MAX_LINE_BYTES",
            ));
        }
        line.extend_from_slice(&available[..take]);
        reader.consume(take);
        total += take;
        if newline.is_some() {
            return Ok(total);
        }
    }
}

fn send_line(writer: &mut UnixStream, line: &str) -> std::io::Result<()> {
    writer.write_all(line.as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()
}

fn handle_submit(
    shared: &Arc<Shared>,
    tenant: &str,
    key: Option<String>,
    jobs: Vec<mixp_harness::Job>,
    options: crate::protocol::SubmitOptions,
) -> String {
    let admission = {
        let mut state = lock(&shared.state);
        let admission = state.admit(tenant, key, jobs, options);
        if let Admission::Admitted { id } = &admission {
            // Journal the admission before acknowledging it, while still
            // holding the state lock: once the client sees `ok`, a killed
            // and restarted daemon must still know about the campaign (and
            // its quota charge).
            let campaign = state.campaign(*id).expect("just admitted");
            if let Err(err) = lock(&shared.journal).record_admission(campaign) {
                eprintln!("warning: queue journal append failed: {err}");
            }
            shared.work.notify_all();
        }
        admission
    };
    match admission {
        Admission::Admitted { id } => ok_line(vec![
            ("id".to_string(), Json::Number(id as f64)),
            ("duplicate".to_string(), Json::Bool(false)),
        ]),
        Admission::Duplicate { id } => ok_line(vec![
            ("id".to_string(), Json::Number(id as f64)),
            ("duplicate".to_string(), Json::Bool(true)),
        ]),
        Admission::Rejected { kind, message } => error_line(kind, &message),
    }
}

fn handle_cancel(shared: &Arc<Shared>, id: u64) -> String {
    let (known, now_terminal) = {
        let mut state = lock(&shared.state);
        let known = state.cancel(id);
        if known {
            if let Err(err) = lock(&shared.journal).record_cancel(id) {
                eprintln!("warning: queue journal append failed: {err}");
            }
        }
        (known, known && state.campaign(id).and_then(Campaign::terminal).is_some())
    };
    if !known {
        return error_line(RejectKind::UnknownCampaign, &format!("no campaign {id}"));
    }
    if now_terminal {
        // Nothing was in flight: the campaign is terminal right now, so
        // release its resources and end its subscriber streams.
        shared.finalize_campaign(id);
    }
    ok_line(vec![("id".to_string(), Json::Number(id as f64))])
}

/// Streams a campaign's observability records to this connection until the
/// campaign is terminal, then writes the `{"done":...}` trailer.
fn serve_subscription(
    shared: &Arc<Shared>,
    writer: &mut UnixStream,
    id: u64,
) -> std::io::Result<()> {
    let receiver: Option<Receiver<String>> = {
        // Subscribe under the state lock so a terminal transition cannot
        // slip between the check and the registration.
        let state = lock(&shared.state);
        match state.campaign(id) {
            None => {
                return send_line(
                    writer,
                    &error_line(RejectKind::UnknownCampaign, &format!("no campaign {id}")),
                );
            }
            Some(campaign) if campaign.terminal().is_some() => None,
            Some(_) => {
                let (sender, receiver) = sync_channel(SUBSCRIBER_BUFFER);
                lock(&shared.subscribers).entry(id).or_default().push(sender);
                Some(receiver)
            }
        }
    };
    send_line(writer, &ok_line(vec![("id".to_string(), Json::Number(id as f64))]))?;
    if let Some(receiver) = receiver {
        // The stream ends when the dispatcher drops the campaign's senders
        // at terminal (recv errs), or earlier if the peer hangs up.
        while let Ok(record) = receiver.recv() {
            send_line(writer, &record)?;
        }
    }
    let trailer = {
        let state = lock(&shared.state);
        let tag = state
            .campaign(id)
            .map_or("unknown", |campaign| campaign.state_tag());
        compact(&Json::Object(vec![
            ("done".to_string(), Json::Bool(true)),
            ("id".to_string(), Json::Number(id as f64)),
            ("state".to_string(), Json::String(tag.to_string())),
        ]))
    };
    send_line(writer, &trailer)
}

/// The dispatcher: waves of cells picked fairly across tenants, executed
/// on the shared pool, recorded and journaled. Exits on stop once the
/// current wave has drained, leaving remaining cells journaled as pending.
fn dispatch_loop(shared: &Arc<Shared>) {
    loop {
        let wave = {
            let mut state = lock(&shared.state);
            loop {
                if shared.stop.load(Ordering::SeqCst) {
                    let _ = lock(&shared.journal).sync();
                    return;
                }
                let workers = state.config.workers.max(1);
                let wave = state.pick_wave(workers);
                if !wave.is_empty() {
                    break wave;
                }
                let (guard, _timeout) = shared
                    .work
                    .wait_timeout(state, POLL_INTERVAL)
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
                state = guard;
            }
        };
        run_wave(shared, &wave);
    }
}

/// Executes one wave: clone each cell's inputs, fan out on the pool, then
/// record, journal and (for campaigns that turned terminal) finalize.
fn run_wave(shared: &Arc<Shared>, wave: &[WaveCell]) {
    struct Work {
        cell: WaveCell,
        job: mixp_harness::Job,
        opts: Arc<CampaignOptions>,
        cache: Option<Arc<SharedEvalCache>>,
        watchdog: Option<Arc<Watchdog>>,
    }
    let work: Vec<Work> = {
        let state = lock(&shared.state);
        let mut runtimes = lock(&shared.runtimes);
        wave.iter()
            .filter_map(|cell| {
                let campaign = state.campaign(cell.campaign)?;
                let runtime = runtimes
                    .entry(cell.campaign)
                    .or_insert_with(|| campaign_runtime(shared, campaign));
                Some(Work {
                    cell: cell.clone(),
                    job: campaign.jobs.get(cell.index)?.clone(),
                    opts: Arc::clone(&runtime.opts),
                    cache: runtime.cache.clone(),
                    watchdog: runtime.watchdog.clone(),
                })
            })
            .collect()
    };
    let slots: Vec<Mutex<Option<(u32, Result<mixp_harness::JobResult, mixp_harness::JobError>)>>> =
        work.iter().map(|_| Mutex::new(None)).collect();
    let pool = &shared.pool;
    pool.run_batch(work.len(), |i| {
        let item = &work[i];
        let outcome = run_cell(
            item.cell.index,
            &item.job,
            &item.opts,
            item.cache.as_ref(),
            None,
            item.watchdog.as_deref(),
            Some(pool),
        );
        *lock(&slots[i]) = Some(outcome);
    });
    // Record the whole wave: state first, then the journal, then stream
    // teardown for campaigns that just turned terminal.
    let mut newly_terminal: Vec<(u64, Terminal)> = Vec::new();
    {
        let mut state = lock(&shared.state);
        let mut journal = lock(&shared.journal);
        for (item, slot) in work.iter().zip(&slots) {
            let (attempts, outcome) = lock(slot).take().unwrap_or((
                0,
                Err(mixp_harness::JobError::Panicked(
                    "worker thread lost before storing a result".to_string(),
                )),
            ));
            if let Err(err) = journal.record_cell(
                item.cell.campaign,
                item.cell.index,
                attempts,
                &item.job,
                &outcome,
            ) {
                eprintln!("warning: queue journal append failed: {err}");
            }
            if let Some(terminal) =
                state.record(item.cell.campaign, item.cell.index, attempts, outcome)
            {
                newly_terminal.push((item.cell.campaign, terminal));
            }
        }
    }
    newly_terminal.sort_unstable_by_key(|(id, _)| *id);
    newly_terminal.dedup_by_key(|(id, _)| *id);
    for (id, _terminal) in newly_terminal {
        shared.finalize_campaign(id);
    }
}

/// Builds a campaign's live resources the first time one of its cells
/// dispatches: its options (with the forwarding obs), its shared
/// evaluation cache, and — only if it has a deadline — its watchdog.
fn campaign_runtime(shared: &Arc<Shared>, campaign: &Campaign) -> CampaignRuntime {
    let id = campaign.id;
    let subscribers = Arc::downgrade(shared);
    let obs = Obs::builder()
        .forward(move |record: &str| {
            let Some(shared) = subscribers.upgrade() else {
                return;
            };
            let mut map = lock(&shared.subscribers);
            let Some(senders) = map.get_mut(&id) else {
                return;
            };
            // Lossy fan-out: a full buffer drops the record for that
            // subscriber, a hung-up subscriber is pruned.
            senders.retain(|sender| {
                !matches!(
                    sender.try_send(record.to_string()),
                    Err(TrySendError::Disconnected(_))
                )
            });
        })
        .build()
        .expect("forward sink cannot fail to open");
    let options = &campaign.options;
    let mut faults = FaultPlan::new();
    for spec in &options.faults {
        faults = faults.inject(spec.job, spec.fault, spec.attempts);
    }
    let opts = CampaignOptions {
        workers: 1, // the daemon's pool does the fanning out, not run_cell
        eval_workers: 0,
        deadline: options.deadline_ms.map(Duration::from_millis),
        grace: options
            .grace_ms
            .map_or_else(|| CampaignOptions::default().grace, Duration::from_millis),
        retry: RetryPolicy::attempts(options.retries.unwrap_or(1)),
        faults,
        checkpoint: None, // the queue journal is the service's checkpoint
        fsync_every: 0,
        shared_cache: true,
        obs,
    };
    let cache = Some(Arc::new(SharedEvalCache::new()));
    let watchdog = opts.deadline.map(|deadline| {
        Arc::new(Watchdog::new(
            deadline,
            opts.grace,
            Some(shared.pool.clone()),
            opts.obs.clone(),
        ))
    });
    CampaignRuntime {
        opts: Arc::new(opts),
        cache,
        watchdog,
    }
}

/// Renders one campaign as response members; with `with_cells`, includes
/// the per-cell outcome documents (the same documents the checkpoint
/// journal writes, so clients can compare them against a direct
/// `run_campaign` bit for bit).
fn campaign_doc(campaign: &Campaign, with_cells: bool) -> Vec<(String, Json)> {
    let mut members = vec![
        ("id".to_string(), Json::Number(campaign.id as f64)),
        (
            "tenant".to_string(),
            Json::String(campaign.tenant.clone()),
        ),
        (
            "state".to_string(),
            Json::String(campaign.state_tag().to_string()),
        ),
        ("cost".to_string(), Json::Number(campaign.cost as f64)),
        (
            "jobs".to_string(),
            Json::Number(campaign.jobs.len() as f64),
        ),
    ];
    if !with_cells {
        return members;
    }
    let cells: Vec<Json> = campaign
        .cells
        .iter()
        .enumerate()
        .map(|(index, cell)| match cell {
            CellSlot::Pending => state_only_cell("pending"),
            CellSlot::InFlight => state_only_cell("running"),
            CellSlot::Skipped => state_only_cell("skipped"),
            CellSlot::Done { attempts, outcome } => {
                let job = &campaign.jobs[index];
                let mut doc = match outcome {
                    Ok(result) => {
                        let Json::Object(mut m) = result_doc(index, job, result) else {
                            unreachable!("result_doc always yields an object")
                        };
                        m.insert(0, ("state".to_string(), Json::String("done".to_string())));
                        m
                    }
                    Err(error) => {
                        let Json::Object(mut m) = failure_doc(index, job, error) else {
                            unreachable!("failure_doc always yields an object")
                        };
                        m.insert(0, ("state".to_string(), Json::String("failed".to_string())));
                        m
                    }
                };
                doc.push((
                    "attempts".to_string(),
                    Json::Number(f64::from(*attempts)),
                ));
                doc.push((
                    "scale".to_string(),
                    Json::String(scale_tag(job.scale).to_string()),
                ));
                Json::Object(doc)
            }
        })
        .collect();
    members.push(("cells".to_string(), Json::Array(cells)));
    members
}

fn state_only_cell(tag: &str) -> Json {
    Json::Object(vec![(
        "state".to_string(),
        Json::String(tag.to_string()),
    )])
}

/// Renders the `list` response: campaign summaries plus tenant ledgers.
fn list_doc(state: &ServiceState, tenant: Option<&str>) -> Vec<(String, Json)> {
    let campaigns: Vec<Json> = state
        .campaigns()
        .filter(|c| tenant.is_none_or(|t| c.tenant == t))
        .map(|c| Json::Object(campaign_doc(c, false)))
        .collect();
    let tenants: Vec<Json> = state
        .tenants()
        .filter(|(name, _)| tenant.is_none_or(|t| name.as_str() == t))
        .map(|(name, ledger)| {
            Json::Object(vec![
                ("tenant".to_string(), Json::String(name.clone())),
                ("quota".to_string(), Json::Number(ledger.quota as f64)),
                ("used".to_string(), Json::Number(ledger.used as f64)),
            ])
        })
        .collect();
    vec![
        ("campaigns".to_string(), Json::Array(campaigns)),
        ("tenants".to_string(), Json::Array(tenants)),
    ]
}
