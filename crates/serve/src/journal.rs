//! The daemon's durable queue journal: admissions, cancellations and cell
//! outcomes, append-only, torn-line tolerant.
//!
//! The format rides on the run-state checkpoint primitives
//! ([`mixp_harness::checkpoint`]): one header line, then one compact JSON
//! object per event, each written as a single line so a `SIGKILL`
//! mid-write can tear at most the final line (which replay skips). Events:
//!
//! ```text
//! {"version":"mixp-serve-queue-1"}
//! {"type":"campaign","id":0,"tenant":"t0","key":"t0-1","cost":64,
//!  "jobs":[{"benchmark":...}],"retries":2,"faults":[...]}
//! {"type":"cell","campaign":0,"attempts":1, <result_doc fields> }
//! {"type":"cell-failed","campaign":0,"attempts":1, <failure_doc fields> }
//! {"type":"tfail","campaign":0,"job":1,"attempts":3,"code":"panic",
//!  "detail":"..."}
//! {"type":"cancel","id":0}
//! ```
//!
//! `cell` and `cell-failed` lines embed the *exact* documents the
//! single-campaign checkpoint writes ([`checkpoint::result_doc`] /
//! [`checkpoint::failure_doc`]) plus the campaign id, so they are decoded
//! by the same validating readers ([`checkpoint::result_from_line`] /
//! [`checkpoint::failure_from_line`]) — one serialisation, two journals.
//!
//! `tfail` records a cell whose *final* outcome was a transient error
//! (panic, deadline) after its retry policy was exhausted. The
//! single-campaign checkpoint deliberately drops these so a resumed run
//! retries them; the service deliberately **keeps** them: a cell's retry
//! budget is part of its submission, and a daemon restart must not grant
//! extra attempts — restart-resumed outcomes stay identical to an
//! uninterrupted run.
//!
//! Replay rebuilds every campaign's full state (admission → recorded cells
//! → cancellation); pending cells simply re-dispatch. Unknown event types
//! and malformed lines are skipped, never fatal.

use crate::protocol::{job_doc, job_from_doc, options_from_doc, options_members};
use crate::state::{Campaign, CellSlot};
use mixp_harness::checkpoint::{
    compact, create_with_header, failure_doc, failure_from_line, result_doc, result_from_line,
};
use mixp_harness::json::{parse, Json};
use mixp_harness::{Job, JobError, JobResult};
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::Path;

/// Version tag in the journal header.
pub const QUEUE_VERSION: &str = "mixp-serve-queue-1";

/// An open, append-mode queue journal.
#[derive(Debug)]
pub struct QueueJournal {
    file: File,
}

impl QueueJournal {
    /// Opens (or creates) the journal at `path` and replays whatever prior
    /// state it holds. A missing file, a foreign or torn header, start the
    /// journal afresh via the atomic temp-file + rename path.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the file cannot be created or
    /// opened for append.
    pub fn open(path: &Path) -> std::io::Result<(QueueJournal, Vec<Campaign>)> {
        let campaigns = replay(path);
        let header_ok = std::fs::read_to_string(path)
            .ok()
            .and_then(|text| text.lines().next().and_then(|l| parse(l).ok()))
            .map(|h| h.get("version").and_then(Json::as_str) == Some(QUEUE_VERSION))
            .unwrap_or(false);
        let file = if header_ok {
            OpenOptions::new().append(true).open(path)?
        } else {
            let header = Json::Object(vec![(
                "version".to_string(),
                Json::String(QUEUE_VERSION.to_string()),
            )]);
            create_with_header(path, &header)?
        };
        Ok((QueueJournal { file }, campaigns))
    }

    fn append(&mut self, mut members: Vec<(String, Json)>, kind: &str) -> std::io::Result<()> {
        members.insert(0, ("type".to_string(), Json::String(kind.to_string())));
        let mut line = compact(&Json::Object(members));
        line.push('\n');
        self.file.write_all(line.as_bytes())?;
        self.file.flush()
    }

    /// Journals one admission, durably enough to survive a process kill
    /// (the line reaches the kernel before the submit is acknowledged).
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error on a failed append.
    pub fn record_admission(&mut self, campaign: &Campaign) -> std::io::Result<()> {
        let mut members = vec![
            ("id".to_string(), Json::Number(campaign.id as f64)),
            (
                "tenant".to_string(),
                Json::String(campaign.tenant.clone()),
            ),
        ];
        if let Some(key) = &campaign.key {
            members.push(("key".to_string(), Json::String(key.clone())));
        }
        members.push(("cost".to_string(), Json::Number(campaign.cost as f64)));
        members.push((
            "jobs".to_string(),
            Json::Array(campaign.jobs.iter().map(job_doc).collect()),
        ));
        members.extend(options_members(&campaign.options));
        self.append(members, "campaign")
    }

    /// Journals a cancellation request.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error on a failed append.
    pub fn record_cancel(&mut self, id: u64) -> std::io::Result<()> {
        self.append(vec![("id".to_string(), Json::Number(id as f64))], "cancel")
    }

    /// Journals one cell's final outcome. Successes and permanent failures
    /// reuse the checkpoint's own documents; transient failures become
    /// `tfail` lines (see module docs).
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error on a failed append.
    pub fn record_cell(
        &mut self,
        campaign: u64,
        index: usize,
        attempts: u32,
        job: &Job,
        outcome: &Result<JobResult, JobError>,
    ) -> std::io::Result<()> {
        let campaign_field = ("campaign".to_string(), Json::Number(campaign as f64));
        let attempts_field = ("attempts".to_string(), Json::Number(f64::from(attempts)));
        match outcome {
            Ok(result) => {
                let Json::Object(mut members) = result_doc(index, job, result) else {
                    unreachable!("result_doc always yields an object");
                };
                members.insert(0, campaign_field);
                members.insert(1, attempts_field);
                self.append(members, "cell")
            }
            Err(error) if !error.is_transient() => {
                let Json::Object(mut members) = failure_doc(index, job, error) else {
                    unreachable!("failure_doc always yields an object");
                };
                members.insert(0, campaign_field);
                members.insert(1, attempts_field);
                self.append(members, "cell-failed")
            }
            Err(error) => {
                let mut members = vec![
                    campaign_field,
                    ("job".to_string(), Json::Number(index as f64)),
                    attempts_field,
                    (
                        "code".to_string(),
                        Json::String(error.code().to_string()),
                    ),
                ];
                match error {
                    JobError::Panicked(payload) => {
                        members.push(("detail".to_string(), Json::String(payload.clone())));
                    }
                    JobError::DeadlineExceeded { limit_ms } => {
                        members.push(("limit_ms".to_string(), Json::Number(*limit_ms as f64)));
                    }
                    _ => unreachable!("only panic/deadline are transient"),
                }
                self.append(members, "tfail")
            }
        }
    }

    /// Forces everything appended so far to disk (graceful shutdown).
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error on a failed fsync.
    pub fn sync(&mut self) -> std::io::Result<()> {
        self.file.sync_data()
    }
}

/// Replays a journal into the campaigns it describes. Any unreadable file,
/// bad header, torn line or unknown event degrades to "less recovered",
/// never to an error — restart must always come up.
fn replay(path: &Path) -> Vec<Campaign> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    let mut lines = text.lines();
    let header_ok = lines
        .next()
        .and_then(|l| parse(l).ok())
        .map(|h| h.get("version").and_then(Json::as_str) == Some(QUEUE_VERSION))
        .unwrap_or(false);
    if !header_ok {
        return Vec::new();
    }
    let mut campaigns: BTreeMap<u64, Campaign> = BTreeMap::new();
    for line in lines {
        let Ok(doc) = parse(line) else {
            continue; // torn line from a kill mid-write
        };
        let Some(kind) = doc.get("type").and_then(Json::as_str) else {
            continue;
        };
        match kind {
            "campaign" => {
                let Some(campaign) = campaign_from_doc(&doc) else {
                    continue;
                };
                campaigns.insert(campaign.id, campaign);
            }
            "cell" | "cell-failed" => {
                let Some(id) = doc.get("campaign").and_then(Json::as_f64) else {
                    continue;
                };
                let Some(campaign) = campaigns.get_mut(&(id as u64)) else {
                    continue;
                };
                let attempts = doc
                    .get("attempts")
                    .and_then(Json::as_f64)
                    .unwrap_or(0.0) as u32;
                let decoded = if kind == "cell" {
                    result_from_line(&doc, &campaign.jobs).map(|(i, r)| (i, Ok(r)))
                } else {
                    failure_from_line(&doc, &campaign.jobs).map(|(i, e)| (i, Err(e)))
                };
                let Some((index, outcome)) = decoded else {
                    continue;
                };
                if let Some(cell) = campaign.cells.get_mut(index) {
                    *cell = CellSlot::Done { attempts, outcome };
                }
            }
            "tfail" => {
                let Some(id) = doc.get("campaign").and_then(Json::as_f64) else {
                    continue;
                };
                let Some(campaign) = campaigns.get_mut(&(id as u64)) else {
                    continue;
                };
                let Some(index) = doc.get("job").and_then(Json::as_f64) else {
                    continue;
                };
                let attempts = doc
                    .get("attempts")
                    .and_then(Json::as_f64)
                    .unwrap_or(0.0) as u32;
                let error = match doc.get("code").and_then(Json::as_str) {
                    Some("panic") => JobError::Panicked(
                        doc.get("detail")
                            .and_then(Json::as_str)
                            .unwrap_or_default()
                            .to_string(),
                    ),
                    Some("deadline") => JobError::DeadlineExceeded {
                        limit_ms: doc
                            .get("limit_ms")
                            .and_then(Json::as_f64)
                            .unwrap_or(0.0) as u128,
                    },
                    _ => continue,
                };
                if let Some(cell) = campaign.cells.get_mut(index as usize) {
                    *cell = CellSlot::Done {
                        attempts,
                        outcome: Err(error),
                    };
                }
            }
            "cancel" => {
                let Some(id) = doc.get("id").and_then(Json::as_f64) else {
                    continue;
                };
                if let Some(campaign) = campaigns.get_mut(&(id as u64)) {
                    campaign.cancelled = true;
                    for cell in &mut campaign.cells {
                        if matches!(cell, CellSlot::Pending) {
                            *cell = CellSlot::Skipped;
                        }
                    }
                }
            }
            _ => {}
        }
    }
    campaigns.into_values().collect()
}

fn campaign_from_doc(doc: &Json) -> Option<Campaign> {
    let id = doc.get("id")?.as_f64()? as u64;
    let tenant = doc.get("tenant")?.as_str()?.to_string();
    let key = match doc.get("key") {
        None => None,
        Some(k) => Some(k.as_str()?.to_string()),
    };
    let cost = doc.get("cost")?.as_f64()? as usize;
    let mut jobs = Vec::new();
    for entry in doc.get("jobs")?.as_array()? {
        jobs.push(job_from_doc(entry)?);
    }
    if jobs.is_empty() {
        return None;
    }
    let options = options_from_doc(doc).ok()?;
    Some(Campaign {
        id,
        tenant,
        key,
        cost,
        cells: vec![CellSlot::Pending; jobs.len()],
        jobs,
        options,
        cancelled: false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{FaultSpec, SubmitOptions};
    use crate::state::Terminal;
    use mixp_harness::{Fault, Scale};

    fn tmpfile(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("mixp-queue-{name}-{}", std::process::id()));
        p
    }

    fn campaign(id: u64, tenant: &str, jobs: Vec<Job>) -> Campaign {
        Campaign {
            id,
            tenant: tenant.to_string(),
            key: Some(format!("{tenant}-{id}")),
            cost: jobs.iter().map(|j| j.budget).sum(),
            cells: vec![CellSlot::Pending; jobs.len()],
            jobs,
            options: SubmitOptions {
                retries: Some(2),
                faults: vec![FaultSpec {
                    job: 0,
                    fault: Fault::SlowMs(1),
                    attempts: 1,
                }],
                ..SubmitOptions::default()
            },
            cancelled: false,
        }
    }

    #[test]
    fn admissions_and_outcomes_replay() {
        let path = tmpfile("replay");
        std::fs::remove_file(&path).ok();
        let jobs = vec![
            Job::new("tridiag", "DD", 1e-3, Scale::Small),
            Job::new("innerprod", "CM", 1e-3, Scale::Small),
        ];
        let result = jobs[0].execute(None, None).unwrap();
        {
            let (mut journal, restored) = QueueJournal::open(&path).unwrap();
            assert!(restored.is_empty());
            let c = campaign(3, "t1", jobs.clone());
            journal.record_admission(&c).unwrap();
            journal
                .record_cell(3, 0, 1, &jobs[0], &Ok(result.clone()))
                .unwrap();
            journal
                .record_cell(3, 1, 2, &jobs[1], &Err(JobError::NonFiniteQuality))
                .unwrap();
        }
        let (_, restored) = QueueJournal::open(&path).unwrap();
        assert_eq!(restored.len(), 1);
        let c = &restored[0];
        assert_eq!((c.id, c.tenant.as_str()), (3, "t1"));
        assert_eq!(c.key.as_deref(), Some("t1-3"));
        assert_eq!(c.jobs, jobs);
        assert_eq!(c.options.retries, Some(2));
        assert_eq!(c.options.faults.len(), 1);
        assert_eq!(c.terminal(), Some(Terminal::Done));
        match &c.cells[0] {
            CellSlot::Done {
                attempts,
                outcome: Ok(r),
            } => {
                assert_eq!(*attempts, 1);
                assert_eq!(r.result.evaluated, result.result.evaluated);
                assert_eq!(
                    r.result.best.as_ref().map(|b| b.speedup.to_bits()),
                    result.result.best.as_ref().map(|b| b.speedup.to_bits()),
                    "journalled speedup must round-trip bit-exactly"
                );
            }
            other => panic!("cell 0: {other:?}"),
        }
        match &c.cells[1] {
            CellSlot::Done {
                attempts: 2,
                outcome: Err(JobError::NonFiniteQuality),
            } => {}
            other => panic!("cell 1: {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn transient_final_failures_are_kept_on_replay() {
        let path = tmpfile("tfail");
        std::fs::remove_file(&path).ok();
        let jobs = vec![Job::new("tridiag", "DD", 1e-3, Scale::Small)];
        {
            let (mut journal, _) = QueueJournal::open(&path).unwrap();
            journal
                .record_admission(&campaign(0, "t0", jobs.clone()))
                .unwrap();
            journal
                .record_cell(
                    0,
                    0,
                    3,
                    &jobs[0],
                    &Err(JobError::Panicked("injected".to_string())),
                )
                .unwrap();
        }
        let (_, restored) = QueueJournal::open(&path).unwrap();
        match &restored[0].cells[0] {
            CellSlot::Done {
                attempts: 3,
                outcome: Err(JobError::Panicked(msg)),
            } => assert_eq!(msg, "injected"),
            other => panic!("{other:?}"),
        }
        assert_eq!(restored[0].terminal(), Some(Terminal::Done));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn cancel_replays_to_a_cancelled_campaign() {
        let path = tmpfile("cancel");
        std::fs::remove_file(&path).ok();
        let jobs = vec![
            Job::new("tridiag", "DD", 1e-3, Scale::Small),
            Job::new("tridiag", "CM", 1e-3, Scale::Small),
        ];
        let result = jobs[0].execute(None, None).unwrap();
        {
            let (mut journal, _) = QueueJournal::open(&path).unwrap();
            journal
                .record_admission(&campaign(0, "t0", jobs.clone()))
                .unwrap();
            journal.record_cell(0, 0, 1, &jobs[0], &Ok(result)).unwrap();
            journal.record_cancel(0).unwrap();
        }
        let (_, restored) = QueueJournal::open(&path).unwrap();
        assert!(restored[0].cancelled);
        assert_eq!(restored[0].terminal(), Some(Terminal::Cancelled));
        assert!(matches!(restored[0].cells[1], CellSlot::Skipped));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_and_garbage_lines_are_skipped() {
        let path = tmpfile("torn");
        std::fs::remove_file(&path).ok();
        let jobs = vec![Job::new("tridiag", "DD", 1e-3, Scale::Small)];
        {
            let (mut journal, _) = QueueJournal::open(&path).unwrap();
            journal
                .record_admission(&campaign(1, "t0", jobs))
                .unwrap();
        }
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str("{\"type\":\"mystery\"}\nnot json at all\n{\"type\":\"camp");
        std::fs::write(&path, &text).unwrap();
        let (_, restored) = QueueJournal::open(&path).unwrap();
        assert_eq!(restored.len(), 1, "good lines survive the debris");
        // And the journal is still appendable afterwards.
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn foreign_header_restarts_the_journal() {
        let path = tmpfile("foreign");
        std::fs::write(&path, "{\"version\":\"somebody-else-1\"}\n{\"x\":1}\n").unwrap();
        let (_, restored) = QueueJournal::open(&path).unwrap();
        assert!(restored.is_empty());
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains(QUEUE_VERSION));
        std::fs::remove_file(&path).ok();
    }
}
