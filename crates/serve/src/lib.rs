//! `mixp-serve` — a long-lived, multi-tenant campaign service over the
//! HPC-MixPBench harness.
//!
//! The paper's workflow is batch: one user, one campaign, one scheduler
//! run. This crate turns that into a *service*: a daemon that listens on a
//! Unix-domain socket, admits campaigns from many tenants, and multiplexes
//! their cells over one shared work-stealing pool — the stand-in for a
//! shared mixed-precision-analysis cluster with a queue in front of it.
//!
//! The layers, bottom up:
//!
//! * [`protocol`] — the line-delimited JSON wire format: `submit`,
//!   `status`, `subscribe`, `cancel`, `list`, `shutdown`; typed rejections
//!   (`bad-request`, `queue-full`, `quota-exceeded`, `unknown-campaign`,
//!   `shutting-down`). Malformed input is answered, never fatal.
//! * [`state`] — the pure in-memory state machine: admission control
//!   (bounded queue depth + per-tenant evaluation-budget quotas charged at
//!   admission), idempotency keys, round-robin-per-tenant wave picking,
//!   cancellation and terminal-state bookkeeping.
//! * [`journal`] — the durable queue journal, built on the run-state
//!   checkpoint primitives ([`mixp_harness::checkpoint`]): admissions,
//!   cancellations and cell outcomes replay after a `SIGKILL`, so a
//!   restarted daemon resumes exactly where the dead one stopped —
//!   without double-charging quotas (admissions carry the client's
//!   idempotency key) and without granting killed cells extra retry
//!   attempts.
//! * [`daemon`] — the server: accept loop, per-connection request threads,
//!   and the dispatcher that executes fairness-picked waves of cells via
//!   [`mixp_harness::scheduler::run_cell`] on one shared
//!   [`mixp_pool::Pool`]. Outcomes are bit-identical to running each
//!   campaign alone through `run_campaign`.
//! * [`client`] — a small blocking client, used by the `loadgen` binary
//!   and the integration tests.
//!
//! The `harness` binary's `serve` subcommand starts the daemon; the
//! `loadgen` binary drives it with a fleet of synthetic tenants, faults,
//! cancellations, quota pressure and a mid-run kill-and-restart.

pub mod client;
pub mod daemon;
pub mod journal;
pub mod protocol;
pub mod state;

pub use client::Client;
pub use daemon::{DaemonConfig, DaemonHandle};
pub use journal::{QueueJournal, QUEUE_VERSION};
pub use protocol::{FaultSpec, RejectKind, Request, SubmitOptions};
pub use state::{Admission, Campaign, CellSlot, ServeConfig, ServiceState, Terminal};
