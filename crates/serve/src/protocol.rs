//! The campaign service wire protocol: line-delimited JSON over a Unix
//! domain socket.
//!
//! Every request and every response is exactly one compact JSON object on
//! one line (the same torn-line-detectable framing the run-state journal
//! uses). A connection carries any number of requests; the daemon answers
//! each in order. The verbs:
//!
//! ```text
//! {"op":"submit","tenant":"t0","key":"t0-17","jobs":[{"benchmark":"tridiag",
//!  "algorithm":"DD","threshold":1e-3,"budget":32,"scale":"small"}],
//!  "retries":2,"deadline_ms":5000,
//!  "faults":[{"job":0,"kind":"panic","n":0,"attempts":1}]}
//! {"op":"status","id":3}
//! {"op":"subscribe","id":3}
//! {"op":"cancel","id":3}
//! {"op":"list"}            — or {"op":"list","tenant":"t0"}
//! {"op":"shutdown"}
//! ```
//!
//! Responses are `{"ok":true,...}` or `{"ok":false,"error":{"kind":...,
//! "message":...}}` with a closed set of error kinds ([`RejectKind`]).
//! Malformed input — a torn line, trailing garbage, an unknown verb —
//! yields a typed `bad-request` error on the same connection; it never
//! terminates the daemon and never closes the stream.
//!
//! `subscribe` is the one streaming verb: after its `{"ok":true}` ack the
//! connection receives the campaign's observability records (one JSONL
//! record per line, exactly as `mixp-obs` renders them) until the campaign
//! reaches a terminal state, then one `{"done":true,"id":N,"state":...}`
//! trailer, after which the connection reverts to request/response.

use mixp_harness::checkpoint::compact;
use mixp_harness::json::{parse, Json};
use mixp_harness::{Fault, Job, Scale};

/// Bound on one request line, defending the daemon against a client that
/// streams an unterminated line forever.
pub const MAX_LINE_BYTES: usize = 1 << 20;

/// One fault injection requested for a submitted campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSpec {
    /// Cell index within the campaign.
    pub job: usize,
    /// The failure mode.
    pub fault: Fault,
    /// How many attempts see the fault (`u32::MAX` = permanent).
    pub attempts: u32,
}

/// Per-campaign execution options a client may set at submit time.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SubmitOptions {
    /// Per-job wall-clock deadline in milliseconds (0/absent = none).
    pub deadline_ms: Option<u64>,
    /// Watchdog grace in milliseconds (absent = scheduler default).
    pub grace_ms: Option<u64>,
    /// Total attempts per job (absent = 1, no retry).
    pub retries: Option<u32>,
    /// Fault injections, for robustness testing against the live service.
    pub faults: Vec<FaultSpec>,
}

/// One parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Admit a new campaign for `tenant`. `key` is an optional
    /// client-chosen idempotency token: resubmitting the same
    /// `(tenant, key)` — e.g. after a connection died mid-submit — returns
    /// the already-admitted campaign instead of double-charging the quota.
    Submit {
        /// Tenant the campaign is charged to.
        tenant: String,
        /// Idempotency token, unique per tenant.
        key: Option<String>,
        /// The campaign's cells.
        jobs: Vec<Job>,
        /// Execution options.
        options: SubmitOptions,
    },
    /// Report a campaign's state and per-cell outcomes.
    Status {
        /// Campaign id.
        id: u64,
    },
    /// Stream the campaign's observability records until it is terminal.
    Subscribe {
        /// Campaign id.
        id: u64,
    },
    /// Stop dispatching a campaign's remaining cells.
    Cancel {
        /// Campaign id.
        id: u64,
    },
    /// List campaigns (optionally one tenant's) and tenant quota ledgers.
    List {
        /// Restrict to one tenant.
        tenant: Option<String>,
    },
    /// Graceful stop: finish in-flight cells, sync the journal, exit.
    Shutdown,
}

/// The closed set of typed rejections the daemon can answer with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectKind {
    /// The line was not a well-formed request.
    BadRequest,
    /// Admission control: the queue of non-terminal campaigns is full.
    QueueFull,
    /// Admission control: the tenant's evaluation-budget quota is spent.
    QuotaExceeded,
    /// The campaign id does not exist.
    UnknownCampaign,
    /// The daemon is draining for shutdown and admits nothing new.
    ShuttingDown,
}

impl RejectKind {
    /// Stable wire tag.
    pub fn tag(self) -> &'static str {
        match self {
            RejectKind::BadRequest => "bad-request",
            RejectKind::QueueFull => "queue-full",
            RejectKind::QuotaExceeded => "quota-exceeded",
            RejectKind::UnknownCampaign => "unknown-campaign",
            RejectKind::ShuttingDown => "shutting-down",
        }
    }
}

/// Renders an error response line (no trailing newline).
pub fn error_line(kind: RejectKind, message: &str) -> String {
    compact(&Json::Object(vec![
        ("ok".to_string(), Json::Bool(false)),
        (
            "error".to_string(),
            Json::Object(vec![
                ("kind".to_string(), Json::String(kind.tag().to_string())),
                ("message".to_string(), Json::String(message.to_string())),
            ]),
        ),
    ]))
}

/// Renders an `{"ok":true,...}` response line from extra members.
pub fn ok_line(extra: Vec<(String, Json)>) -> String {
    let mut members = vec![("ok".to_string(), Json::Bool(true))];
    members.extend(extra);
    compact(&Json::Object(members))
}

/// The wire name of a scale.
pub fn scale_tag(scale: Scale) -> &'static str {
    match scale {
        Scale::Small => "small",
        Scale::Paper => "paper",
    }
}

fn scale_from_tag(tag: &str) -> Option<Scale> {
    match tag {
        "small" => Some(Scale::Small),
        "paper" => Some(Scale::Paper),
        _ => None,
    }
}

/// One job as a wire/journal document.
pub fn job_doc(job: &Job) -> Json {
    Json::Object(vec![
        ("benchmark".to_string(), Json::String(job.benchmark.clone())),
        ("algorithm".to_string(), Json::String(job.algorithm.clone())),
        ("threshold".to_string(), Json::Number(job.threshold)),
        ("budget".to_string(), Json::Number(job.budget as f64)),
        (
            "scale".to_string(),
            Json::String(scale_tag(job.scale).to_string()),
        ),
    ])
}

/// Parses one job document; `None` on any missing/ill-typed field.
pub fn job_from_doc(doc: &Json) -> Option<Job> {
    let benchmark = doc.get("benchmark")?.as_str()?;
    let algorithm = doc.get("algorithm")?.as_str()?;
    let threshold = doc.get("threshold")?.as_f64()?;
    let scale = match doc.get("scale") {
        None => Scale::Small,
        Some(tag) => scale_from_tag(tag.as_str()?)?,
    };
    let mut job = Job::new(benchmark, algorithm, threshold, scale);
    if let Some(budget) = doc.get("budget") {
        let budget = budget.as_f64()?;
        if budget < 0.0 {
            return None;
        }
        job.budget = budget as usize;
    }
    Some(job)
}

/// One fault spec as a wire/journal document.
pub fn fault_doc(spec: &FaultSpec) -> Json {
    let (kind, n) = match spec.fault {
        Fault::Panic { at_eval } => ("panic", Some(at_eval as f64)),
        Fault::NanOutput { from_eval } => ("nan-output", Some(from_eval as f64)),
        Fault::CorruptOutput { from_eval } => ("corrupt-output", Some(from_eval as f64)),
        Fault::SlowMs(ms) => ("slow", Some(ms as f64)),
        Fault::HangMs(ms) => ("hang", Some(ms as f64)),
        Fault::StarveBudget => ("starve-budget", None),
        Fault::ZeroDeadline => ("zero-deadline", None),
        Fault::CostModelNan => ("cost-model-nan", None),
    };
    let mut members = vec![
        ("job".to_string(), Json::Number(spec.job as f64)),
        ("kind".to_string(), Json::String(kind.to_string())),
    ];
    if let Some(n) = n {
        members.push(("n".to_string(), Json::Number(n)));
    }
    members.push((
        "attempts".to_string(),
        Json::Number(f64::from(spec.attempts)),
    ));
    Json::Object(members)
}

/// Parses one fault document; `None` on anything malformed.
pub fn fault_from_doc(doc: &Json) -> Option<FaultSpec> {
    let job = doc.get("job")?.as_f64()?;
    if job < 0.0 {
        return None;
    }
    let n = || doc.get("n")?.as_f64();
    let fault = match doc.get("kind")?.as_str()? {
        "panic" => Fault::Panic {
            at_eval: n()? as usize,
        },
        "nan-output" => Fault::NanOutput {
            from_eval: n()? as usize,
        },
        "corrupt-output" => Fault::CorruptOutput {
            from_eval: n()? as usize,
        },
        "slow" => Fault::SlowMs(n()? as u64),
        "hang" => Fault::HangMs(n()? as u64),
        "starve-budget" => Fault::StarveBudget,
        "zero-deadline" => Fault::ZeroDeadline,
        "cost-model-nan" => Fault::CostModelNan,
        _ => return None,
    };
    let attempts = match doc.get("attempts") {
        None => u32::MAX,
        Some(v) => {
            let a = v.as_f64()?;
            if !(0.0..=f64::from(u32::MAX)).contains(&a) {
                return None;
            }
            a as u32
        }
    };
    Some(FaultSpec {
        job: job as usize,
        fault,
        attempts,
    })
}

/// The submit options as wire/journal document members (merged into the
/// enclosing object, so the journal's campaign record and the wire request
/// share one shape).
pub fn options_members(options: &SubmitOptions) -> Vec<(String, Json)> {
    let mut members = Vec::new();
    if let Some(ms) = options.deadline_ms {
        members.push(("deadline_ms".to_string(), Json::Number(ms as f64)));
    }
    if let Some(ms) = options.grace_ms {
        members.push(("grace_ms".to_string(), Json::Number(ms as f64)));
    }
    if let Some(retries) = options.retries {
        members.push(("retries".to_string(), Json::Number(f64::from(retries))));
    }
    if !options.faults.is_empty() {
        members.push((
            "faults".to_string(),
            Json::Array(options.faults.iter().map(fault_doc).collect()),
        ));
    }
    members
}

/// Parses the submit options out of a request/journal document.
pub fn options_from_doc(doc: &Json) -> Result<SubmitOptions, String> {
    let mut options = SubmitOptions::default();
    if let Some(ms) = doc.get("deadline_ms") {
        let ms = ms.as_f64().ok_or("deadline_ms must be a number")?;
        if ms < 0.0 {
            return Err("deadline_ms must be non-negative".to_string());
        }
        if ms > 0.0 {
            options.deadline_ms = Some(ms as u64);
        }
    }
    if let Some(ms) = doc.get("grace_ms") {
        let ms = ms.as_f64().ok_or("grace_ms must be a number")?;
        if ms < 0.0 {
            return Err("grace_ms must be non-negative".to_string());
        }
        options.grace_ms = Some(ms as u64);
    }
    if let Some(retries) = doc.get("retries") {
        let retries = retries.as_f64().ok_or("retries must be a number")?;
        if !(0.0..=1024.0).contains(&retries) {
            return Err("retries must be in 0..=1024".to_string());
        }
        options.retries = Some(retries as u32);
    }
    if let Some(faults) = doc.get("faults") {
        let faults = faults.as_array().ok_or("faults must be an array")?;
        for entry in faults {
            options
                .faults
                .push(fault_from_doc(entry).ok_or("malformed fault spec")?);
        }
    }
    Ok(options)
}

/// Renders a `submit` request line.
pub fn submit_line(
    tenant: &str,
    key: Option<&str>,
    jobs: &[Job],
    options: &SubmitOptions,
) -> String {
    let mut members = vec![
        ("op".to_string(), Json::String("submit".to_string())),
        ("tenant".to_string(), Json::String(tenant.to_string())),
    ];
    if let Some(key) = key {
        members.push(("key".to_string(), Json::String(key.to_string())));
    }
    members.push((
        "jobs".to_string(),
        Json::Array(jobs.iter().map(job_doc).collect()),
    ));
    members.extend(options_members(options));
    compact(&Json::Object(members))
}

/// Renders a one-id request line (`status`, `subscribe`, `cancel`).
pub fn id_line(op: &str, id: u64) -> String {
    compact(&Json::Object(vec![
        ("op".to_string(), Json::String(op.to_string())),
        ("id".to_string(), Json::Number(id as f64)),
    ]))
}

/// Renders a `list` request line.
pub fn list_line(tenant: Option<&str>) -> String {
    let mut members = vec![("op".to_string(), Json::String("list".to_string()))];
    if let Some(tenant) = tenant {
        members.push(("tenant".to_string(), Json::String(tenant.to_string())));
    }
    compact(&Json::Object(members))
}

/// Renders a `shutdown` request line.
pub fn shutdown_line() -> String {
    compact(&Json::Object(vec![(
        "op".to_string(),
        Json::String("shutdown".to_string()),
    )]))
}

/// Parses one request line. The error string is a human-readable reason
/// suitable for a `bad-request` response — parsing never panics, whatever
/// the bytes.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let doc = parse(line).map_err(|e| format!("JSON error at byte {}: {}", e.offset, e.message))?;
    let op = doc
        .get("op")
        .and_then(Json::as_str)
        .ok_or("missing string field `op`")?;
    let id = |field: &str| -> Result<u64, String> {
        let v = doc
            .get(field)
            .and_then(Json::as_f64)
            .ok_or(format!("missing numeric field `{field}`"))?;
        if !(0.0..=9e15).contains(&v) || v.fract() != 0.0 {
            return Err(format!("field `{field}` is not a campaign id"));
        }
        Ok(v as u64)
    };
    match op {
        "submit" => {
            let tenant = doc
                .get("tenant")
                .and_then(Json::as_str)
                .ok_or("submit needs a string `tenant`")?;
            if tenant.is_empty() || tenant.len() > 128 {
                return Err("tenant must be 1..=128 bytes".to_string());
            }
            let key = match doc.get("key") {
                None => None,
                Some(k) => Some(
                    k.as_str()
                        .ok_or("key must be a string")?
                        .to_string(),
                ),
            };
            let jobs_doc = doc
                .get("jobs")
                .and_then(Json::as_array)
                .ok_or("submit needs a `jobs` array")?;
            if jobs_doc.is_empty() {
                return Err("submit needs at least one job".to_string());
            }
            if jobs_doc.len() > 4096 {
                return Err("too many jobs in one campaign (max 4096)".to_string());
            }
            let mut jobs = Vec::with_capacity(jobs_doc.len());
            for entry in jobs_doc {
                jobs.push(job_from_doc(entry).ok_or("malformed job document")?);
            }
            let options = options_from_doc(&doc)?;
            if let Some(spec) = options.faults.iter().find(|s| s.job >= jobs.len()) {
                return Err(format!("fault targets job {} of {}", spec.job, jobs.len()));
            }
            Ok(Request::Submit {
                tenant: tenant.to_string(),
                key,
                jobs,
                options,
            })
        }
        "status" => Ok(Request::Status { id: id("id")? }),
        "subscribe" => Ok(Request::Subscribe { id: id("id")? }),
        "cancel" => Ok(Request::Cancel { id: id("id")? }),
        "list" => {
            let tenant = match doc.get("tenant") {
                None => None,
                Some(t) => Some(t.as_str().ok_or("tenant must be a string")?.to_string()),
            };
            Ok(Request::List { tenant })
        }
        "shutdown" => Ok(Request::Shutdown),
        other => Err(format!("unknown op `{other}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn submit_round_trips_through_the_wire_shape() {
        let jobs = vec![
            Job::new("tridiag", "DD", 1e-3, Scale::Small),
            Job::new("eos", "GA", 1e-6, Scale::Paper),
        ];
        let options = SubmitOptions {
            deadline_ms: Some(5000),
            grace_ms: None,
            retries: Some(2),
            faults: vec![FaultSpec {
                job: 1,
                fault: Fault::SlowMs(3),
                attempts: 1,
            }],
        };
        let mut members = vec![
            ("op".to_string(), Json::String("submit".to_string())),
            ("tenant".to_string(), Json::String("t0".to_string())),
            ("key".to_string(), Json::String("t0-1".to_string())),
            (
                "jobs".to_string(),
                Json::Array(jobs.iter().map(job_doc).collect()),
            ),
        ];
        members.extend(options_members(&options));
        let line = compact(&Json::Object(members));
        match parse_request(&line).expect("parses") {
            Request::Submit {
                tenant,
                key,
                jobs: parsed,
                options: opts,
            } => {
                assert_eq!(tenant, "t0");
                assert_eq!(key.as_deref(), Some("t0-1"));
                assert_eq!(parsed, jobs);
                assert_eq!(opts, options);
            }
            other => panic!("expected Submit, got {other:?}"),
        }
    }

    #[test]
    fn every_fault_kind_round_trips() {
        let faults = [
            Fault::Panic { at_eval: 2 },
            Fault::NanOutput { from_eval: 1 },
            Fault::CorruptOutput { from_eval: 0 },
            Fault::SlowMs(7),
            Fault::HangMs(11),
            Fault::StarveBudget,
            Fault::ZeroDeadline,
            Fault::CostModelNan,
        ];
        for (i, fault) in faults.into_iter().enumerate() {
            let spec = FaultSpec {
                job: i,
                fault,
                attempts: (i as u32) + 1,
            };
            let back = fault_from_doc(&fault_doc(&spec)).expect("round-trips");
            assert_eq!(back, spec, "{fault:?}");
        }
    }

    #[test]
    fn malformed_lines_are_typed_errors_never_panics() {
        for line in [
            "",
            "garbage",
            "{\"op\":\"submit\"",          // torn
            "{\"op\":\"nope\"}",           // unknown verb
            "{\"op\":\"status\"}",         // missing id
            "{\"op\":\"status\",\"id\":-1}",
            "{\"op\":\"status\",\"id\":1.5}",
            "{\"op\":\"submit\",\"tenant\":\"t\",\"jobs\":[]}",
            "{\"op\":\"submit\",\"tenant\":\"t\",\"jobs\":[{\"benchmark\":3}]}",
            "{\"op\":\"submit\",\"tenant\":\"\",\"jobs\":[{}]}",
            "{\"op\":\"submit\",\"tenant\":\"t\",\"jobs\":[{\"benchmark\":\"tridiag\",\
             \"algorithm\":\"DD\",\"threshold\":0.001}],\"faults\":[{\"job\":5,\
             \"kind\":\"panic\",\"n\":0}]}",
            "[1,2,3]",
            "{\"op\":\"list\"} trailing",
        ] {
            assert!(parse_request(line).is_err(), "must reject: {line}");
        }
    }

    #[test]
    fn simple_verbs_parse() {
        assert_eq!(
            parse_request("{\"op\":\"status\",\"id\":7}").unwrap(),
            Request::Status { id: 7 }
        );
        assert_eq!(
            parse_request("{\"op\":\"cancel\",\"id\":0}").unwrap(),
            Request::Cancel { id: 0 }
        );
        assert_eq!(
            parse_request("{\"op\":\"list\"}").unwrap(),
            Request::List { tenant: None }
        );
        assert_eq!(
            parse_request("{\"op\":\"list\",\"tenant\":\"a\"}").unwrap(),
            Request::List {
                tenant: Some("a".to_string())
            }
        );
        assert_eq!(parse_request("{\"op\":\"shutdown\"}").unwrap(), Request::Shutdown);
    }

    #[test]
    fn error_and_ok_lines_are_single_line_json() {
        let err = error_line(RejectKind::QuotaExceeded, "tenant t0 has 3 left");
        assert!(!err.contains('\n'));
        let doc = parse(&err).expect("error line parses");
        assert_eq!(doc.get("ok"), Some(&Json::Bool(false)));
        assert_eq!(
            doc.get("error").unwrap().get("kind").unwrap().as_str(),
            Some("quota-exceeded")
        );
        let ok = ok_line(vec![("id".to_string(), Json::Number(4.0))]);
        assert!(!ok.contains('\n'));
        let doc = parse(&ok).expect("ok line parses");
        assert_eq!(doc.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(doc.get("id").unwrap().as_f64(), Some(4.0));
    }

    #[test]
    fn job_budget_and_scale_default_sensibly() {
        let doc = parse(
            "{\"benchmark\":\"tridiag\",\"algorithm\":\"DD\",\"threshold\":0.001}",
        )
        .unwrap();
        let job = job_from_doc(&doc).expect("parses");
        assert_eq!(job.budget, Job::DEFAULT_BUDGET);
        assert_eq!(job.scale, Scale::Small);
    }
}
