//! The daemon's in-memory state machine: tenants, quotas, admission
//! control, and the fair wave picker.
//!
//! Everything here is pure bookkeeping — no I/O, no threads — so the
//! admission and fairness rules are unit-testable without a socket or a
//! pool. The daemon holds one [`ServiceState`] behind a mutex; the
//! dispatcher and the connection threads are thin shims over the methods
//! here.
//!
//! # Admission control
//!
//! A `submit` is admitted iff **both** gates pass, checked in this order:
//!
//! 1. **Queue depth** — the count of non-terminal campaigns (queued,
//!    running, or cancelling with cells still in flight) is below
//!    `queue_depth`. Otherwise: `queue-full`.
//! 2. **Tenant quota** — each tenant holds an *evaluation-budget* quota.
//!    A campaign's cost is the sum of its jobs' budgets (the same unit the
//!    search's `EvaluatorBuilder` meters), charged **at admission** and
//!    never refunded — not on cancel, not on failure. The rule is
//!    deliberately blunt: a tenant that submits work pays for the right to
//!    run it, so quota arithmetic stays exact across crashes and restarts
//!    (the journal replays admissions, not completions). Otherwise:
//!    `quota-exceeded`.
//!
//! Resubmitting the same `(tenant, key)` idempotency token returns the
//! existing campaign id without charging again — that is what makes
//! client-side retry after a daemon kill safe.
//!
//! # Fairness
//!
//! The dispatcher drains the queue in *waves* of at most `workers` cells.
//! Cells are picked round-robin across tenants: one cell per tenant per
//! turn, cycling, starting after the tenant served first in the previous
//! wave. Within a tenant, the oldest admitted campaign goes first; within
//! a campaign, cells run in job order. A tenant with one enormous campaign
//! therefore cannot starve a tenant with a small one — the small tenant
//! gets one of every `active_tenants` slots.

use crate::protocol::{RejectKind, SubmitOptions};
use mixp_harness::{Job, JobError, JobResult};
use std::collections::BTreeMap;

/// Static daemon configuration, fixed at startup.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Pool parallelism: cells dispatched concurrently per wave.
    pub workers: usize,
    /// Max non-terminal campaigns held at once (admission gate 1).
    pub queue_depth: usize,
    /// Evaluation-budget quota for tenants without an explicit override.
    pub default_quota: usize,
    /// Per-tenant quota overrides.
    pub quotas: Vec<(String, usize)>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 2,
            queue_depth: 64,
            default_quota: 1 << 20,
            quotas: Vec::new(),
        }
    }
}

/// One tenant's quota ledger.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tenant {
    /// Evaluation-budget units this tenant may admit in total.
    pub quota: usize,
    /// Units charged so far (monotone — never refunded).
    pub used: usize,
}

/// Lifecycle of one cell (one job) of a campaign.
#[derive(Debug, Clone)]
pub enum CellSlot {
    /// Not yet dispatched.
    Pending,
    /// Handed to the pool in the current wave.
    InFlight,
    /// Finished (possibly with a typed error), after `attempts` tries.
    Done {
        /// Attempts consumed (0 when restored from the journal).
        attempts: u32,
        /// The outcome.
        outcome: Result<JobResult, JobError>,
    },
    /// Cancelled before dispatch — never ran, never will.
    Skipped,
}

/// Terminal state of a campaign, if it has reached one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Terminal {
    /// Every cell ran to an outcome.
    Done,
    /// Cancelled; undispatched cells were skipped.
    Cancelled,
}

impl Terminal {
    /// Stable wire tag.
    pub fn tag(self) -> &'static str {
        match self {
            Terminal::Done => "done",
            Terminal::Cancelled => "cancelled",
        }
    }
}

/// One admitted campaign.
#[derive(Debug)]
pub struct Campaign {
    /// Service-assigned id, dense from 0 in admission order.
    pub id: u64,
    /// Owning tenant.
    pub tenant: String,
    /// Client idempotency token, unique per tenant.
    pub key: Option<String>,
    /// The cells.
    pub jobs: Vec<Job>,
    /// Execution options from the submit.
    pub options: SubmitOptions,
    /// Quota units charged at admission (sum of job budgets).
    pub cost: usize,
    /// Per-cell lifecycle, indexed like `jobs`.
    pub cells: Vec<CellSlot>,
    /// Cancel requested; pending cells are already `Skipped`.
    pub cancelled: bool,
}

impl Campaign {
    /// Terminal state, or `None` while any cell is pending or in flight.
    pub fn terminal(&self) -> Option<Terminal> {
        for cell in &self.cells {
            if matches!(cell, CellSlot::Pending | CellSlot::InFlight) {
                return None;
            }
        }
        if self.cancelled {
            Some(Terminal::Cancelled)
        } else {
            Some(Terminal::Done)
        }
    }

    /// Human-facing state tag (terminal tag, else queued/running).
    pub fn state_tag(&self) -> &'static str {
        match self.terminal() {
            Some(t) => t.tag(),
            None => {
                if self
                    .cells
                    .iter()
                    .any(|c| matches!(c, CellSlot::InFlight | CellSlot::Done { .. }))
                {
                    "running"
                } else {
                    "queued"
                }
            }
        }
    }
}

/// Outcome of an admission attempt.
#[derive(Debug)]
pub enum Admission {
    /// A new campaign was admitted and charged.
    Admitted {
        /// Its id.
        id: u64,
    },
    /// The `(tenant, key)` token matched an existing campaign; nothing
    /// was charged.
    Duplicate {
        /// The existing campaign's id.
        id: u64,
    },
    /// Typed rejection; nothing was charged.
    Rejected {
        /// Which gate refused.
        kind: RejectKind,
        /// Human-readable reason.
        message: String,
    },
}

/// One cell picked for a dispatch wave.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WaveCell {
    /// Campaign the cell belongs to.
    pub campaign: u64,
    /// Cell index within the campaign.
    pub index: usize,
}

/// The daemon's entire mutable state.
#[derive(Debug)]
pub struct ServiceState {
    /// Static configuration.
    pub config: ServeConfig,
    campaigns: BTreeMap<u64, Campaign>,
    tenants: BTreeMap<String, Tenant>,
    next_id: u64,
    /// Tenant served first in the last wave; the next wave starts after it.
    rr_last: Option<String>,
    draining: bool,
}

impl ServiceState {
    /// Fresh state for `config`. Tenants with quota overrides exist from
    /// the start; others materialise on first submit.
    pub fn new(config: ServeConfig) -> Self {
        let mut tenants = BTreeMap::new();
        for (name, quota) in &config.quotas {
            tenants.insert(
                name.clone(),
                Tenant {
                    quota: *quota,
                    used: 0,
                },
            );
        }
        ServiceState {
            config,
            campaigns: BTreeMap::new(),
            tenants,
            next_id: 0,
            rr_last: None,
            draining: false,
        }
    }

    /// Campaigns not yet terminal.
    pub fn active_count(&self) -> usize {
        self.campaigns
            .values()
            .filter(|c| c.terminal().is_none())
            .count()
    }

    /// Starts refusing new admissions (graceful shutdown).
    pub fn drain(&mut self) {
        self.draining = true;
    }

    /// Whether a drain has been requested.
    pub fn draining(&self) -> bool {
        self.draining
    }

    /// Looks up a campaign.
    pub fn campaign(&self, id: u64) -> Option<&Campaign> {
        self.campaigns.get(&id)
    }

    /// All campaigns in admission order.
    pub fn campaigns(&self) -> impl Iterator<Item = &Campaign> {
        self.campaigns.values()
    }

    /// A tenant's ledger, if it has ever submitted (or has an override).
    pub fn tenant(&self, name: &str) -> Option<&Tenant> {
        self.tenants.get(name)
    }

    /// All tenant ledgers, by name.
    pub fn tenants(&self) -> impl Iterator<Item = (&String, &Tenant)> {
        self.tenants.iter()
    }

    /// The admission decision for one submit — both gates, the idempotency
    /// check, and (on success) the quota charge, atomically.
    pub fn admit(
        &mut self,
        tenant: &str,
        key: Option<String>,
        jobs: Vec<Job>,
        options: SubmitOptions,
    ) -> Admission {
        if self.draining {
            return Admission::Rejected {
                kind: RejectKind::ShuttingDown,
                message: "daemon is draining; submit refused".to_string(),
            };
        }
        if let Some(token) = &key {
            if let Some(existing) = self
                .campaigns
                .values()
                .find(|c| c.tenant == tenant && c.key.as_deref() == Some(token))
            {
                return Admission::Duplicate { id: existing.id };
            }
        }
        if self.active_count() >= self.config.queue_depth {
            return Admission::Rejected {
                kind: RejectKind::QueueFull,
                message: format!(
                    "queue holds {} non-terminal campaigns (depth {})",
                    self.active_count(),
                    self.config.queue_depth
                ),
            };
        }
        let cost: usize = jobs.iter().map(|j| j.budget).sum();
        let default_quota = self.config.default_quota;
        let ledger = self.tenants.entry(tenant.to_string()).or_insert(Tenant {
            quota: default_quota,
            used: 0,
        });
        if ledger.used.saturating_add(cost) > ledger.quota {
            return Admission::Rejected {
                kind: RejectKind::QuotaExceeded,
                message: format!(
                    "tenant {tenant} has {} of {} budget units left; campaign costs {cost}",
                    ledger.quota - ledger.used,
                    ledger.quota
                ),
            };
        }
        ledger.used += cost;
        let id = self.next_id;
        self.next_id += 1;
        let cells = vec![CellSlot::Pending; jobs.len()];
        self.campaigns.insert(
            id,
            Campaign {
                id,
                tenant: tenant.to_string(),
                key,
                jobs,
                options,
                cost,
                cells,
                cancelled: false,
            },
        );
        Admission::Admitted { id }
    }

    /// Re-seats a campaign restored from the queue journal, bypassing the
    /// admission gates (it was admitted before the restart; refusing it now
    /// would un-charge work the tenant already paid for). Keeps `next_id`
    /// above every restored id.
    pub fn restore(&mut self, campaign: Campaign) {
        let default_quota = self.config.default_quota;
        let ledger = self
            .tenants
            .entry(campaign.tenant.clone())
            .or_insert(Tenant {
                quota: default_quota,
                used: 0,
            });
        ledger.used = ledger.used.saturating_add(campaign.cost);
        self.next_id = self.next_id.max(campaign.id + 1);
        self.campaigns.insert(campaign.id, campaign);
    }

    /// Requests cancellation: pending cells are skipped immediately and
    /// will never dispatch; in-flight cells finish and are recorded. The
    /// campaign turns terminal once nothing is in flight. Returns `false`
    /// for an unknown id, `true` otherwise (cancelling a terminal campaign
    /// is a harmless no-op, reported as success for idempotency).
    pub fn cancel(&mut self, id: u64) -> bool {
        let Some(campaign) = self.campaigns.get_mut(&id) else {
            return false;
        };
        if campaign.terminal().is_some() {
            return true;
        }
        campaign.cancelled = true;
        for cell in &mut campaign.cells {
            if matches!(cell, CellSlot::Pending) {
                *cell = CellSlot::Skipped;
            }
        }
        true
    }

    /// Picks up to `max` cells for the next wave, round-robin across
    /// tenants, and marks them in flight. Returns an empty wave when
    /// nothing is runnable.
    pub fn pick_wave(&mut self, max: usize) -> Vec<WaveCell> {
        // Tenants with at least one pending cell, in name order.
        let mut runnable: Vec<String> = {
            let mut names: Vec<&String> = self
                .campaigns
                .values()
                .filter(|c| c.cells.iter().any(|s| matches!(s, CellSlot::Pending)))
                .map(|c| &c.tenant)
                .collect();
            names.sort();
            names.dedup();
            names.into_iter().cloned().collect()
        };
        if runnable.is_empty() || max == 0 {
            return Vec::new();
        }
        // Start the cycle after the tenant that led the previous wave.
        if let Some(last) = &self.rr_last {
            let start = match runnable.binary_search(last) {
                Ok(i) => (i + 1) % runnable.len(),
                Err(i) => i % runnable.len(),
            };
            runnable.rotate_left(start);
        }
        self.rr_last = Some(runnable[0].clone());
        let mut wave = Vec::with_capacity(max);
        let mut turn = 0usize;
        while wave.len() < max && !runnable.is_empty() {
            let tenant = &runnable[turn % runnable.len()];
            let picked = self.pick_one(tenant);
            match picked {
                Some(cell) => {
                    wave.push(cell);
                    turn += 1;
                }
                None => {
                    let exhausted = turn % runnable.len();
                    runnable.remove(exhausted);
                    if !runnable.is_empty() {
                        turn = exhausted % runnable.len();
                        continue;
                    }
                }
            }
            if turn >= runnable.len().max(1) {
                turn %= runnable.len().max(1);
            }
        }
        wave
    }

    /// The oldest pending cell of `tenant`'s oldest campaign, marked
    /// in flight.
    fn pick_one(&mut self, tenant: &str) -> Option<WaveCell> {
        for campaign in self.campaigns.values_mut() {
            if campaign.tenant != tenant {
                continue;
            }
            for (index, cell) in campaign.cells.iter_mut().enumerate() {
                if matches!(cell, CellSlot::Pending) {
                    *cell = CellSlot::InFlight;
                    return Some(WaveCell {
                        campaign: campaign.id,
                        index,
                    });
                }
            }
        }
        None
    }

    /// Records a finished cell. Returns the campaign's terminal state if
    /// this record completed it.
    pub fn record(
        &mut self,
        id: u64,
        index: usize,
        attempts: u32,
        outcome: Result<JobResult, JobError>,
    ) -> Option<Terminal> {
        let campaign = self.campaigns.get_mut(&id)?;
        if let Some(cell) = campaign.cells.get_mut(index) {
            *cell = CellSlot::Done { attempts, outcome };
        }
        campaign.terminal()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mixp_harness::Scale;

    fn job(budget: usize) -> Job {
        let mut j = Job::new("tridiag", "DD", 1e-3, Scale::Small);
        j.budget = budget;
        j
    }

    fn admit(state: &mut ServiceState, tenant: &str, budgets: &[usize]) -> u64 {
        match state.admit(
            tenant,
            None,
            budgets.iter().map(|b| job(*b)).collect(),
            SubmitOptions::default(),
        ) {
            Admission::Admitted { id } => id,
            other => panic!("expected admission, got {other:?}"),
        }
    }

    #[test]
    fn quota_is_charged_at_admission_and_never_refunded() {
        let mut state = ServiceState::new(ServeConfig {
            default_quota: 100,
            ..ServeConfig::default()
        });
        let id = admit(&mut state, "t0", &[40, 40]);
        assert_eq!(state.tenant("t0").unwrap().used, 80);
        // Cancel does not refund.
        assert!(state.cancel(id));
        assert_eq!(state.tenant("t0").unwrap().used, 80);
        // A further 40-unit campaign is over quota.
        match state.admit("t0", None, vec![job(40)], SubmitOptions::default()) {
            Admission::Rejected { kind, .. } => assert_eq!(kind, RejectKind::QuotaExceeded),
            other => panic!("expected quota rejection, got {other:?}"),
        }
        // 20 units still fit exactly.
        admit(&mut state, "t0", &[20]);
        assert_eq!(state.tenant("t0").unwrap().used, 100);
    }

    #[test]
    fn quota_overrides_beat_the_default() {
        let mut state = ServiceState::new(ServeConfig {
            default_quota: 10,
            quotas: vec![("vip".to_string(), 1000)],
            ..ServeConfig::default()
        });
        admit(&mut state, "vip", &[500]);
        match state.admit("pleb", None, vec![job(500)], SubmitOptions::default()) {
            Admission::Rejected { kind, .. } => assert_eq!(kind, RejectKind::QuotaExceeded),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn queue_depth_bounds_non_terminal_campaigns() {
        let mut state = ServiceState::new(ServeConfig {
            queue_depth: 2,
            ..ServeConfig::default()
        });
        let a = admit(&mut state, "t0", &[1]);
        let _b = admit(&mut state, "t1", &[1]);
        match state.admit("t2", None, vec![job(1)], SubmitOptions::default()) {
            Admission::Rejected { kind, .. } => assert_eq!(kind, RejectKind::QueueFull),
            other => panic!("{other:?}"),
        }
        // Cancelling one (it has no in-flight cells) frees a slot.
        assert!(state.cancel(a));
        assert_eq!(state.campaign(a).unwrap().terminal(), Some(Terminal::Cancelled));
        admit(&mut state, "t2", &[1]);
    }

    #[test]
    fn idempotency_key_dedupes_without_double_charge() {
        let mut state = ServiceState::new(ServeConfig::default());
        let first = state.admit(
            "t0",
            Some("k1".to_string()),
            vec![job(7)],
            SubmitOptions::default(),
        );
        let Admission::Admitted { id } = first else {
            panic!("{first:?}")
        };
        let used = state.tenant("t0").unwrap().used;
        let second = state.admit(
            "t0",
            Some("k1".to_string()),
            vec![job(7)],
            SubmitOptions::default(),
        );
        match second {
            Admission::Duplicate { id: dup } => assert_eq!(dup, id),
            other => panic!("{other:?}"),
        }
        assert_eq!(state.tenant("t0").unwrap().used, used, "no double charge");
        // Same key under another tenant is a distinct campaign.
        match state.admit(
            "t1",
            Some("k1".to_string()),
            vec![job(7)],
            SubmitOptions::default(),
        ) {
            Admission::Admitted { .. } => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn draining_refuses_all_submits() {
        let mut state = ServiceState::new(ServeConfig::default());
        state.drain();
        match state.admit("t0", None, vec![job(1)], SubmitOptions::default()) {
            Admission::Rejected { kind, .. } => assert_eq!(kind, RejectKind::ShuttingDown),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn waves_round_robin_across_tenants() {
        let mut state = ServiceState::new(ServeConfig::default());
        // t0 floods 8 cells; t1 and t2 have 2 each.
        let big = admit(&mut state, "t0", &[1; 8]);
        let b1 = admit(&mut state, "t1", &[1; 2]);
        let b2 = admit(&mut state, "t2", &[1; 2]);
        let wave = state.pick_wave(6);
        assert_eq!(wave.len(), 6);
        let per = |id: u64| wave.iter().filter(|c| c.campaign == id).count();
        assert_eq!(per(big), 2, "flooding tenant gets 1 of every 3 slots");
        assert_eq!(per(b1), 2);
        assert_eq!(per(b2), 2);
        // Next wave: only t0 has pending cells left.
        let wave = state.pick_wave(6);
        assert_eq!(wave.len(), 6);
        assert!(wave.iter().all(|c| c.campaign == big));
        assert!(state.pick_wave(6).is_empty(), "everything is in flight");
    }

    #[test]
    fn wave_start_rotates_between_waves() {
        let mut state = ServiceState::new(ServeConfig::default());
        admit(&mut state, "a", &[1; 4]);
        admit(&mut state, "b", &[1; 4]);
        let w1 = state.pick_wave(1);
        let w2 = state.pick_wave(1);
        assert_ne!(
            w1[0].campaign, w2[0].campaign,
            "a 1-slot wave must not always serve the same tenant"
        );
    }

    #[test]
    fn within_a_tenant_oldest_campaign_first_in_job_order() {
        let mut state = ServiceState::new(ServeConfig::default());
        let old = admit(&mut state, "t0", &[1; 2]);
        let new = admit(&mut state, "t0", &[1; 2]);
        let wave = state.pick_wave(3);
        assert_eq!(
            wave,
            vec![
                WaveCell { campaign: old, index: 0 },
                WaveCell { campaign: old, index: 1 },
                WaveCell { campaign: new, index: 0 },
            ]
        );
    }

    #[test]
    fn cancel_skips_pending_but_not_in_flight() {
        let mut state = ServiceState::new(ServeConfig::default());
        let id = admit(&mut state, "t0", &[1; 3]);
        let wave = state.pick_wave(1);
        assert_eq!(wave.len(), 1);
        assert!(state.cancel(id));
        // Not yet terminal: one cell is still in flight.
        assert_eq!(state.campaign(id).unwrap().terminal(), None);
        assert_eq!(state.campaign(id).unwrap().state_tag(), "running");
        // No further cells dispatch.
        assert!(state.pick_wave(4).is_empty());
        // The in-flight cell completing makes it terminal-cancelled.
        let terminal = state.record(
            id,
            wave[0].index,
            1,
            Err(JobError::NonFiniteQuality),
        );
        assert_eq!(terminal, Some(Terminal::Cancelled));
    }

    #[test]
    fn completion_makes_a_campaign_done() {
        let mut state = ServiceState::new(ServeConfig::default());
        let id = admit(&mut state, "t0", &[1; 2]);
        let wave = state.pick_wave(4);
        assert_eq!(wave.len(), 2);
        assert_eq!(
            state.record(id, 0, 1, Err(JobError::NonFiniteQuality)),
            None
        );
        assert_eq!(
            state.record(id, 1, 1, Err(JobError::NonFiniteQuality)),
            Some(Terminal::Done)
        );
        assert_eq!(state.campaign(id).unwrap().state_tag(), "done");
        assert_eq!(state.active_count(), 0);
    }

    #[test]
    fn unknown_campaign_cancel_is_reported() {
        let mut state = ServiceState::new(ServeConfig::default());
        assert!(!state.cancel(99));
    }

    #[test]
    fn restore_recharges_quota_and_advances_ids() {
        let mut state = ServiceState::new(ServeConfig {
            default_quota: 100,
            ..ServeConfig::default()
        });
        let jobs = vec![job(30)];
        state.restore(Campaign {
            id: 5,
            tenant: "t0".to_string(),
            key: Some("k".to_string()),
            cells: vec![CellSlot::Pending; jobs.len()],
            cost: jobs.iter().map(|j| j.budget).sum(),
            jobs,
            options: SubmitOptions::default(),
            cancelled: false,
        });
        assert_eq!(state.tenant("t0").unwrap().used, 30);
        // The idempotency token still dedupes after restore.
        match state.admit(
            "t0",
            Some("k".to_string()),
            vec![job(30)],
            SubmitOptions::default(),
        ) {
            Admission::Duplicate { id } => assert_eq!(id, 5),
            other => panic!("{other:?}"),
        }
        // Fresh ids start above the restored one.
        let next = admit(&mut state, "t0", &[10]);
        assert!(next > 5);
    }
}
