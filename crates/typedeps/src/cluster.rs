//! The cluster partition produced by the type-dependence analysis.

use crate::UnionFind;
use mixp_float::{Precision, PrecisionConfig, VarId};
use std::fmt;

/// Identifier of one cluster (a set of variables that must share a type).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClusterId(pub(crate) u32);

impl ClusterId {
    /// Dense index of this cluster.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Creates a `ClusterId` from a raw dense index.
    pub fn from_index(index: usize) -> Self {
        ClusterId(u32::try_from(index).expect("more than u32::MAX clusters"))
    }
}

impl fmt::Display for ClusterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// Partition of the *tunable* variables into must-share-type clusters.
///
/// Untunable variables (literals) are not part of any cluster; they stay
/// double in every configuration, which is how Typeforge's inability to
/// transform literals manifests in the paper's Hotspot analysis.
#[derive(Debug, Clone)]
pub struct Clustering {
    /// `cluster_of[var.index()]` — `None` for untunable variables.
    cluster_of: Vec<Option<ClusterId>>,
    /// Member variables per cluster, each sorted by id.
    members: Vec<Vec<VarId>>,
}

impl Clustering {
    /// Builds the partition from the dependence graph.
    ///
    /// `tunable[i]` says whether variable `i` may change type at all; edges
    /// merge the sets of the variables they connect.
    pub(crate) fn from_edges(tunable: &[bool], edges: &[(VarId, VarId)]) -> Self {
        let n = tunable.len();
        let mut uf = UnionFind::new(n);
        for &(a, b) in edges {
            uf.union(a.index(), b.index());
        }
        // Assign dense cluster ids to tunable roots in first-seen order.
        let mut cluster_of = vec![None; n];
        let mut members: Vec<Vec<VarId>> = Vec::new();
        let mut root_to_cluster = vec![usize::MAX; n];
        for i in 0..n {
            if !tunable[i] {
                continue;
            }
            let root = uf.find(i);
            let c = if root_to_cluster[root] == usize::MAX {
                let c = members.len();
                root_to_cluster[root] = c;
                members.push(Vec::new());
                c
            } else {
                root_to_cluster[root]
            };
            cluster_of[i] = Some(ClusterId::from_index(c));
            members[c].push(VarId::from_index(i));
        }
        Clustering {
            cluster_of,
            members,
        }
    }

    /// Number of clusters (the paper's *TC* metric).
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the program has no tunable variables at all.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The cluster containing `var`, or `None` if `var` is untunable.
    pub fn cluster_of(&self, var: VarId) -> Option<ClusterId> {
        self.cluster_of[var.index()]
    }

    /// The member variables of `cluster`, sorted by id.
    ///
    /// # Panics
    ///
    /// Panics if `cluster` is out of range.
    pub fn members(&self, cluster: ClusterId) -> &[VarId] {
        &self.members[cluster.index()]
    }

    /// Iterates over all cluster ids.
    pub fn ids(&self) -> impl Iterator<Item = ClusterId> {
        (0..self.members.len()).map(ClusterId::from_index)
    }

    /// Expands a cluster-level selection into a variable-level
    /// [`PrecisionConfig`]: every member of a selected cluster is lowered to
    /// single precision.
    ///
    /// `total_vars` is the full variable count of the program (tunable and
    /// untunable alike).
    pub fn expand(
        &self,
        total_vars: usize,
        lowered: impl IntoIterator<Item = ClusterId>,
    ) -> PrecisionConfig {
        let mut cfg = PrecisionConfig::all_double(total_vars);
        for c in lowered {
            for &v in self.members(c) {
                cfg.set(v, Precision::Single);
            }
        }
        cfg
    }

    /// Expands a full per-cluster precision assignment (`levels[i]` is the
    /// precision of cluster `i`) into a variable-level configuration.
    /// Supports the paper's `p = 3` search spaces (half/single/double).
    ///
    /// # Panics
    ///
    /// Panics if `levels.len()` differs from the cluster count.
    pub fn expand_levels(&self, total_vars: usize, levels: &[Precision]) -> PrecisionConfig {
        assert_eq!(levels.len(), self.members.len(), "one level per cluster");
        let mut cfg = PrecisionConfig::all_double(total_vars);
        for (ms, &prec) in self.members.iter().zip(levels) {
            for &v in ms {
                cfg.set(v, prec);
            }
        }
        cfg
    }

    /// Whether `cfg` assigns a uniform precision within every cluster (i.e.
    /// would compile after Typeforge's transformation).
    pub fn is_valid(&self, cfg: &PrecisionConfig) -> bool {
        self.members.iter().all(|ms| {
            ms.windows(2)
                .all(|w| cfg.get(w[0]) == cfg.get(w[1]))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mixp_core::prop::{bools, usizes, vecs};
    use mixp_core::{prop_assert, prop_assert_eq, prop_check};

    fn v(i: usize) -> VarId {
        VarId::from_index(i)
    }

    #[test]
    fn no_edges_yields_singletons() {
        let c = Clustering::from_edges(&[true, true, true], &[]);
        assert_eq!(c.len(), 3);
        for i in 0..3 {
            assert_eq!(c.members(c.cluster_of(v(i)).unwrap()), &[v(i)]);
        }
    }

    #[test]
    fn edges_merge_clusters() {
        let c = Clustering::from_edges(&[true, true, true, true], &[(v(0), v(2)), (v(2), v(3))]);
        assert_eq!(c.len(), 2);
        let c0 = c.cluster_of(v(0)).unwrap();
        assert_eq!(c.members(c0), &[v(0), v(2), v(3)]);
        assert_ne!(c.cluster_of(v(1)), Some(c0));
    }

    #[test]
    fn untunable_vars_have_no_cluster() {
        let c = Clustering::from_edges(&[true, false, true], &[]);
        assert_eq!(c.len(), 2);
        assert_eq!(c.cluster_of(v(1)), None);
    }

    #[test]
    fn expand_lowers_whole_cluster() {
        let c = Clustering::from_edges(&[true, true, true], &[(v(0), v(1))]);
        let c0 = c.cluster_of(v(0)).unwrap();
        let cfg = c.expand(3, [c0]);
        assert_eq!(cfg.get(v(0)), Precision::Single);
        assert_eq!(cfg.get(v(1)), Precision::Single);
        assert_eq!(cfg.get(v(2)), Precision::Double);
    }

    #[test]
    fn expand_levels_supports_three_precisions() {
        let c = Clustering::from_edges(&[true, true, true], &[(v(0), v(1))]);
        let cfg = c.expand_levels(3, &[Precision::Half, Precision::Single]);
        assert_eq!(cfg.get(v(0)), Precision::Half);
        assert_eq!(cfg.get(v(1)), Precision::Half);
        assert_eq!(cfg.get(v(2)), Precision::Single);
        assert!(c.is_valid(&cfg));
    }

    #[test]
    #[should_panic]
    fn expand_levels_rejects_wrong_arity() {
        let c = Clustering::from_edges(&[true, true], &[]);
        c.expand_levels(2, &[Precision::Half]);
    }

    #[test]
    fn is_valid_detects_split_cluster() {
        let c = Clustering::from_edges(&[true, true], &[(v(0), v(1))]);
        let mut cfg = PrecisionConfig::all_double(2);
        assert!(c.is_valid(&cfg));
        cfg.set(v(0), Precision::Single);
        assert!(!c.is_valid(&cfg), "half-lowered cluster must not compile");
        cfg.set(v(1), Precision::Single);
        assert!(c.is_valid(&cfg));
    }

    /// expand() always produces a valid configuration, and every cluster
    /// is either fully lowered or fully double.
    #[test]
    fn expand_is_always_valid() {
        prop_check!((
            n in usizes(1..20),
            edges in vecs((usizes(0..20), usizes(0..20)), 0..15),
            selector in vecs(bools(), 20..21),
        ) => {
            let tunable = vec![true; n];
            let edges: Vec<(VarId, VarId)> =
                edges.into_iter().map(|(a, b)| (v(a % n), v(b % n))).collect();
            let c = Clustering::from_edges(&tunable, &edges);
            let lowered: Vec<ClusterId> = c
                .ids()
                .filter(|cid| selector[cid.index() % selector.len()])
                .collect();
            let cfg = c.expand(n, lowered.iter().copied());
            prop_assert!(c.is_valid(&cfg));
            for cid in c.ids() {
                let selected = lowered.contains(&cid);
                for &m in c.members(cid) {
                    prop_assert_eq!(
                        cfg.get(m) == Precision::Single,
                        selected
                    );
                }
            }
        });
    }

    /// Every tunable variable lands in exactly one cluster and the
    /// clusters partition the tunable set.
    #[test]
    fn clusters_partition_tunables() {
        prop_check!((
            n in usizes(1..20),
            untunable_mask in vecs(bools(), 20..21),
            edges in vecs((usizes(0..20), usizes(0..20)), 0..15),
        ) => {
            let tunable: Vec<bool> = (0..n).map(|i| !untunable_mask[i]).collect();
            let edges: Vec<(VarId, VarId)> =
                edges.into_iter().map(|(a, b)| (v(a % n), v(b % n))).collect();
            let c = Clustering::from_edges(&tunable, &edges);
            let mut seen = std::collections::HashSet::new();
            for cid in c.ids() {
                for &m in c.members(cid) {
                    prop_assert!(tunable[m.index()]);
                    prop_assert!(seen.insert(m), "variable in two clusters");
                    prop_assert_eq!(c.cluster_of(m), Some(cid));
                }
            }
            let tunable_count = tunable.iter().filter(|t| **t).count();
            prop_assert_eq!(seen.len(), tunable_count);
        });
    }
}
