//! Structural hierarchy identifiers (module / function), used by the
//! hierarchical search strategies.

use std::fmt;

/// Identifier of a source module (translation unit) in the program model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ModuleId(pub(crate) u32);

impl ModuleId {
    /// Dense index of this module.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ModuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// Identifier of a function in the program model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FuncId(pub(crate) u32);

impl FuncId {
    /// Dense index of this function.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for FuncId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(ModuleId(3).to_string(), "m3");
        assert_eq!(FuncId(9).to_string(), "f9");
    }

    #[test]
    fn indices_round_trip() {
        assert_eq!(ModuleId(5).index(), 5);
        assert_eq!(FuncId(0).index(), 0);
    }
}
