//! Type-dependence analysis and variable clustering — the Typeforge analogue.
//!
//! The paper's Typeforge performs an inter-procedural type-dependence
//! analysis over C++ source: an entity `x` is type-dependent on `y` iff
//! changing `y`'s type forces `x`'s type to change to keep the program
//! compiling (pointer/array assignments and pointer-typed call bindings
//! force equal base types; scalar assignments do not, because a cast can be
//! inserted). The result is a *partition* of the tunable variables into
//! clusters that must change type together.
//!
//! Our benchmarks are Rust, so there is no C++ AST to analyse; instead each
//! benchmark *declares* its program model — modules, functions, variables and
//! the dependence edges its pointer flows would induce — through
//! [`ProgramBuilder`]. This crate computes the same outputs Typeforge hands
//! to FloatSmith: the cluster partition (via union-find) and the structural
//! hierarchy (program → module → function → variable) consumed by the
//! hierarchical search strategies.
//!
//! # Example
//!
//! Listing 1 of the paper (`vect_mult`/`foo`) produces the partition
//! `{arr, input}, {val, inout}, {scale}, {ratio}, {res}`:
//!
//! ```
//! use mixp_typedeps::ProgramBuilder;
//!
//! let mut b = ProgramBuilder::new("listing1");
//! let m = b.module("main");
//! let vect_mult = b.function("vect_mult", m);
//! let input = b.array(vect_mult, "input");
//! let inout = b.array(vect_mult, "inout");
//! let ratio = b.scalar(vect_mult, "ratio");
//! let res = b.scalar(vect_mult, "res");
//! let foo = b.function("foo", m);
//! let arr = b.array(foo, "arr");
//! let val = b.scalar(foo, "val");
//! let scale = b.scalar(foo, "scale");
//! // Call bindings: vect_mult(10, arr, &val, scale)
//! b.bind(arr, input);   // pointer argument: base types must match
//! b.bind(val, inout);   // address-of argument: base types must match
//! // `scale -> ratio` is a scalar (by-value) binding: no edge.
//! let _ = (ratio, res, scale);
//! let pm = b.build();
//! assert_eq!(pm.total_variables(), 7);
//! assert_eq!(pm.total_clusters(), 5);
//! ```

mod cluster;
mod hierarchy;
mod model;
mod unionfind;

pub use cluster::{ClusterId, Clustering};
pub use hierarchy::{FuncId, ModuleId};
pub use model::{InvalidConfig, ProgramBuilder, ProgramModel, VarInfo, VarKind};
pub use unionfind::UnionFind;
