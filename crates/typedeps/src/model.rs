//! The declarative program model benchmarks register themselves with.

use crate::{ClusterId, Clustering, FuncId, ModuleId};
use mixp_float::{Precision, PrecisionConfig, VarId, VarRegistry};
use std::fmt;

/// The syntactic kind of a tunable program location.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VarKind {
    /// A scalar local or global variable.
    Scalar,
    /// An array / pointer-to-buffer variable (base type is what changes).
    Array,
    /// A floating-point literal. Typeforge does not transform literals, so
    /// these are untunable and pinned to double — mixing them with lowered
    /// variables produces the cast overhead the paper observes in Hotspot.
    Literal,
}

/// Metadata of one program location.
#[derive(Debug, Clone)]
pub struct VarInfo {
    /// The location's id (index into configurations).
    pub id: VarId,
    /// Declared name (for reports).
    pub name: String,
    /// Syntactic kind.
    pub kind: VarKind,
    /// Enclosing function.
    pub function: FuncId,
    /// Whether the search may change this location's precision.
    pub tunable: bool,
}

/// Error returned when a configuration cannot "compile": it splits a
/// type-dependence cluster or lowers an untunable location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidConfig {
    /// Human-readable reason.
    pub reason: String,
}

impl fmt::Display for InvalidConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "configuration does not compile: {}", self.reason)
    }
}

impl std::error::Error for InvalidConfig {}

/// Incrementally constructs a [`ProgramModel`].
///
/// Benchmarks declare modules, functions, variables and the dependence edges
/// a Typeforge analysis of their C source would find, then call
/// [`ProgramBuilder::build`].
#[derive(Debug, Clone)]
pub struct ProgramBuilder {
    name: String,
    registry: VarRegistry,
    vars: Vec<VarInfo>,
    modules: Vec<String>,
    functions: Vec<(String, ModuleId)>,
    edges: Vec<(VarId, VarId)>,
}

impl ProgramBuilder {
    /// Starts a model for the benchmark called `name`.
    pub fn new(name: impl Into<String>) -> Self {
        ProgramBuilder {
            name: name.into(),
            registry: VarRegistry::new(),
            vars: Vec::new(),
            modules: Vec::new(),
            functions: Vec::new(),
            edges: Vec::new(),
        }
    }

    /// Declares a module (translation unit).
    pub fn module(&mut self, name: impl Into<String>) -> ModuleId {
        let id = ModuleId(u32::try_from(self.modules.len()).expect("too many modules"));
        self.modules.push(name.into());
        id
    }

    /// Declares a function inside `module`.
    ///
    /// # Panics
    ///
    /// Panics if `module` was not declared by this builder.
    pub fn function(&mut self, name: impl Into<String>, module: ModuleId) -> FuncId {
        assert!(module.index() < self.modules.len(), "unknown module");
        let id = FuncId(u32::try_from(self.functions.len()).expect("too many functions"));
        self.functions.push((name.into(), module));
        id
    }

    fn var(&mut self, function: FuncId, name: &str, kind: VarKind, tunable: bool) -> VarId {
        assert!(function.index() < self.functions.len(), "unknown function");
        let id = self.registry.fresh(name);
        self.vars.push(VarInfo {
            id,
            name: name.to_string(),
            kind,
            function,
            tunable,
        });
        id
    }

    /// Declares a tunable scalar variable.
    pub fn scalar(&mut self, function: FuncId, name: &str) -> VarId {
        self.var(function, name, VarKind::Scalar, true)
    }

    /// Declares a tunable array (pointer base type) variable.
    pub fn array(&mut self, function: FuncId, name: &str) -> VarId {
        self.var(function, name, VarKind::Array, true)
    }

    /// Declares an untunable literal location (always double).
    pub fn literal(&mut self, function: FuncId, name: &str) -> VarId {
        self.var(function, name, VarKind::Literal, false)
    }

    /// Records a type-dependence edge: `a` and `b` must share a base type
    /// (pointer assignment, array argument binding, address-of binding).
    ///
    /// # Panics
    ///
    /// Panics if either variable was not declared by this builder.
    pub fn bind(&mut self, a: VarId, b: VarId) {
        assert!(a.index() < self.vars.len() && b.index() < self.vars.len());
        self.edges.push((a, b));
    }

    /// Finalises the model, running the clustering analysis.
    pub fn build(self) -> ProgramModel {
        let tunable: Vec<bool> = self.vars.iter().map(|v| v.tunable).collect();
        let clustering = Clustering::from_edges(&tunable, &self.edges);
        ProgramModel {
            name: self.name,
            registry: self.registry,
            vars: self.vars,
            modules: self.modules,
            functions: self.functions,
            clustering,
        }
    }
}

/// The finalized program model of one benchmark: variables, hierarchy and
/// the cluster partition.
#[derive(Debug, Clone)]
pub struct ProgramModel {
    name: String,
    registry: VarRegistry,
    vars: Vec<VarInfo>,
    modules: Vec<String>,
    functions: Vec<(String, ModuleId)>,
    clustering: Clustering,
}

impl ProgramModel {
    /// The benchmark's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Total number of program locations (tunable or not).
    pub fn var_count(&self) -> usize {
        self.vars.len()
    }

    /// The paper's *TV* metric: number of tunable variables.
    pub fn total_variables(&self) -> usize {
        self.vars.iter().filter(|v| v.tunable).count()
    }

    /// The paper's *TC* metric: number of type-dependence clusters.
    pub fn total_clusters(&self) -> usize {
        self.clustering.len()
    }

    /// Metadata of `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var` is out of range.
    pub fn var_info(&self, var: VarId) -> &VarInfo {
        &self.vars[var.index()]
    }

    /// The name registry (ids ↔ names).
    pub fn registry(&self) -> &VarRegistry {
        &self.registry
    }

    /// All tunable variable ids, in declaration order.
    pub fn tunable_vars(&self) -> Vec<VarId> {
        self.vars
            .iter()
            .filter(|v| v.tunable)
            .map(|v| v.id)
            .collect()
    }

    /// The cluster partition.
    pub fn clustering(&self) -> &Clustering {
        &self.clustering
    }

    /// Ids and names of all modules.
    pub fn modules(&self) -> impl Iterator<Item = (ModuleId, &str)> {
        self.modules
            .iter()
            .enumerate()
            .map(|(i, n)| (ModuleId(i as u32), n.as_str()))
    }

    /// Ids and names of all functions.
    pub fn functions(&self) -> impl Iterator<Item = (FuncId, &str)> {
        self.functions
            .iter()
            .enumerate()
            .map(|(i, (n, _))| (FuncId(i as u32), n.as_str()))
    }

    /// The module containing `func`.
    ///
    /// # Panics
    ///
    /// Panics if `func` is out of range.
    pub fn module_of(&self, func: FuncId) -> ModuleId {
        self.functions[func.index()].1
    }

    /// Tunable variables declared in `func`.
    pub fn vars_in_function(&self, func: FuncId) -> Vec<VarId> {
        self.vars
            .iter()
            .filter(|v| v.tunable && v.function == func)
            .map(|v| v.id)
            .collect()
    }

    /// Tunable variables declared in any function of `module`.
    pub fn vars_in_module(&self, module: ModuleId) -> Vec<VarId> {
        self.vars
            .iter()
            .filter(|v| v.tunable && self.module_of(v.function) == module)
            .map(|v| v.id)
            .collect()
    }

    /// Builds an all-double configuration sized for this program.
    pub fn config_all_double(&self) -> PrecisionConfig {
        PrecisionConfig::all_double(self.var_count())
    }

    /// Builds the configuration that lowers every *tunable* variable
    /// (literals stay double, exactly like Typeforge's output).
    pub fn config_all_single(&self) -> PrecisionConfig {
        PrecisionConfig::from_lowered(self.var_count(), self.tunable_vars())
    }

    /// Expands a cluster selection into a variable-level configuration.
    pub fn config_from_clusters(
        &self,
        lowered: impl IntoIterator<Item = ClusterId>,
    ) -> PrecisionConfig {
        self.clustering.expand(self.var_count(), lowered)
    }

    /// Expands a per-cluster precision assignment into a variable-level
    /// configuration (three-level search spaces).
    ///
    /// # Panics
    ///
    /// Panics if `levels.len()` differs from the cluster count.
    pub fn config_from_cluster_levels(&self, levels: &[Precision]) -> PrecisionConfig {
        self.clustering.expand_levels(self.var_count(), levels)
    }

    /// Checks that `cfg` would compile: no untunable location is lowered and
    /// no cluster is split across precisions.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidConfig`] naming the offending location or cluster.
    pub fn validate(&self, cfg: &PrecisionConfig) -> Result<(), InvalidConfig> {
        if cfg.len() != self.var_count() {
            return Err(InvalidConfig {
                reason: format!(
                    "configuration covers {} locations, program has {}",
                    cfg.len(),
                    self.var_count()
                ),
            });
        }
        for v in &self.vars {
            if !v.tunable && cfg.get(v.id) != Precision::Double {
                return Err(InvalidConfig {
                    reason: format!("untransformable location `{}` lowered", v.name),
                });
            }
        }
        for c in self.clustering.ids() {
            let ms = self.clustering.members(c);
            if let Some(w) = ms.windows(2).find(|w| cfg.get(w[0]) != cfg.get(w[1])) {
                return Err(InvalidConfig {
                    reason: format!(
                        "cluster {c} split: `{}` and `{}` differ in precision",
                        self.registry.name(w[0]),
                        self.registry.name(w[1])
                    ),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Listing 1 example from the paper.
    fn listing1() -> ProgramModel {
        let mut b = ProgramBuilder::new("listing1");
        let m = b.module("main");
        let vm = b.function("vect_mult", m);
        let input = b.array(vm, "input");
        let inout = b.array(vm, "inout");
        let _ratio = b.scalar(vm, "ratio");
        let _res = b.scalar(vm, "res");
        let foo = b.function("foo", m);
        let arr = b.array(foo, "arr");
        let val = b.scalar(foo, "val");
        let _scale = b.scalar(foo, "scale");
        b.bind(arr, input);
        b.bind(val, inout);
        b.build()
    }

    #[test]
    fn listing1_partition_matches_paper() {
        let pm = listing1();
        assert_eq!(pm.total_variables(), 7);
        assert_eq!(pm.total_clusters(), 5);
        let reg = pm.registry();
        let arr = reg.find("arr").unwrap();
        let input = reg.find("input").unwrap();
        let val = reg.find("val").unwrap();
        let inout = reg.find("inout").unwrap();
        let scale = reg.find("scale").unwrap();
        let ratio = reg.find("ratio").unwrap();
        let cl = pm.clustering();
        assert_eq!(cl.cluster_of(arr), cl.cluster_of(input));
        assert_eq!(cl.cluster_of(val), cl.cluster_of(inout));
        assert_ne!(cl.cluster_of(scale), cl.cluster_of(ratio));
        assert_ne!(cl.cluster_of(arr), cl.cluster_of(val));
    }

    #[test]
    fn validate_accepts_cluster_consistent_configs() {
        let pm = listing1();
        assert!(pm.validate(&pm.config_all_double()).is_ok());
        assert!(pm.validate(&pm.config_all_single()).is_ok());
    }

    #[test]
    fn validate_rejects_split_cluster() {
        let pm = listing1();
        let arr = pm.registry().find("arr").unwrap();
        let mut cfg = pm.config_all_double();
        cfg.set(arr, Precision::Single); // `input` stays double: won't compile
        let err = pm.validate(&cfg).unwrap_err();
        assert!(err.reason.contains("split"), "unexpected reason: {}", err.reason);
    }

    #[test]
    fn validate_rejects_lowered_literal() {
        let mut b = ProgramBuilder::new("lit");
        let m = b.module("main");
        let f = b.function("f", m);
        let lit = b.literal(f, "0.5");
        let pm = b.build();
        let mut cfg = pm.config_all_double();
        cfg.set(lit, Precision::Single);
        assert!(pm.validate(&cfg).is_err());
    }

    #[test]
    fn literals_do_not_count_as_variables() {
        let mut b = ProgramBuilder::new("lit");
        let m = b.module("main");
        let f = b.function("f", m);
        b.literal(f, "0.5");
        b.scalar(f, "x");
        let pm = b.build();
        assert_eq!(pm.total_variables(), 1);
        assert_eq!(pm.total_clusters(), 1);
        assert_eq!(pm.var_count(), 2);
    }

    #[test]
    fn all_single_keeps_literals_double() {
        let mut b = ProgramBuilder::new("lit");
        let m = b.module("main");
        let f = b.function("f", m);
        let lit = b.literal(f, "0.5");
        let x = b.scalar(f, "x");
        let pm = b.build();
        let cfg = pm.config_all_single();
        assert_eq!(cfg.get(lit), Precision::Double);
        assert_eq!(cfg.get(x), Precision::Single);
        assert!(pm.validate(&cfg).is_ok());
    }

    #[test]
    fn hierarchy_queries() {
        let mut b = ProgramBuilder::new("h");
        let m1 = b.module("a.c");
        let m2 = b.module("b.c");
        let f1 = b.function("f1", m1);
        let f2 = b.function("f2", m2);
        let x = b.scalar(f1, "x");
        let y = b.scalar(f2, "y");
        let z = b.array(f2, "z");
        let pm = b.build();
        assert_eq!(pm.vars_in_function(f1), vec![x]);
        assert_eq!(pm.vars_in_module(m2), vec![y, z]);
        assert_eq!(pm.module_of(f2), m2);
        assert_eq!(pm.modules().count(), 2);
        assert_eq!(pm.functions().count(), 2);
    }

    #[test]
    fn config_from_clusters_expands() {
        let pm = listing1();
        let arr = pm.registry().find("arr").unwrap();
        let input = pm.registry().find("input").unwrap();
        let c = pm.clustering().cluster_of(arr).unwrap();
        let cfg = pm.config_from_clusters([c]);
        assert_eq!(cfg.get(arr), Precision::Single);
        assert_eq!(cfg.get(input), Precision::Single);
        assert_eq!(cfg.lowered_count(), 2);
        assert!(pm.validate(&cfg).is_ok());
    }

    #[test]
    fn validate_rejects_wrong_length() {
        let pm = listing1();
        let cfg = PrecisionConfig::all_double(3);
        assert!(pm.validate(&cfg).is_err());
    }
}
