//! Disjoint-set forest used by the clustering pass.

/// A union-find (disjoint-set) structure with path compression and union by
/// rank.
///
/// # Example
///
/// ```
/// use mixp_typedeps::UnionFind;
///
/// let mut uf = UnionFind::new(4);
/// uf.union(0, 1);
/// uf.union(2, 3);
/// assert!(uf.same_set(0, 1));
/// assert!(!uf.same_set(1, 2));
/// assert_eq!(uf.set_count(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<usize>,
    rank: Vec<u8>,
    sets: usize,
}

impl UnionFind {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
            rank: vec![0; n],
            sets: n,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the structure covers zero elements.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// The representative of `x`'s set.
    ///
    /// # Panics
    ///
    /// Panics if `x >= len()`.
    pub fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        // Path compression.
        let mut cur = x;
        while self.parent[cur] != root {
            let next = self.parent[cur];
            self.parent[cur] = root;
            cur = next;
        }
        root
    }

    /// Merges the sets of `a` and `b`. Returns `true` if they were distinct.
    ///
    /// # Panics
    ///
    /// Panics if `a` or `b` is out of range.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (hi, lo) = if self.rank[ra] >= self.rank[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[lo] = hi;
        if self.rank[hi] == self.rank[lo] {
            self.rank[hi] += 1;
        }
        self.sets -= 1;
        true
    }

    /// Whether `a` and `b` are in the same set.
    pub fn same_set(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Current number of disjoint sets.
    pub fn set_count(&self) -> usize {
        self.sets
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mixp_core::prop::{usizes, vecs};
    use mixp_core::{prop_assert, prop_assert_eq, prop_check};

    #[test]
    fn singletons_are_disjoint() {
        let mut uf = UnionFind::new(3);
        assert_eq!(uf.set_count(), 3);
        assert!(!uf.same_set(0, 2));
        assert!(uf.same_set(1, 1));
    }

    #[test]
    fn union_merges_transitively() {
        let mut uf = UnionFind::new(5);
        uf.union(0, 1);
        uf.union(1, 2);
        assert!(uf.same_set(0, 2));
        assert_eq!(uf.set_count(), 3);
    }

    #[test]
    fn double_union_is_idempotent() {
        let mut uf = UnionFind::new(3);
        assert!(uf.union(0, 1));
        assert!(!uf.union(0, 1));
        assert!(!uf.union(1, 0));
        assert_eq!(uf.set_count(), 2);
    }

    #[test]
    fn empty_is_empty() {
        let uf = UnionFind::new(0);
        assert!(uf.is_empty());
        assert_eq!(uf.set_count(), 0);
    }

    /// After any sequence of unions, set_count equals the number of
    /// distinct representatives, and same_set is an equivalence.
    #[test]
    fn set_count_matches_distinct_roots() {
        prop_check!((
            n in usizes(1..40),
            pairs in vecs((usizes(0..40), usizes(0..40)), 0..60),
        ) => {
            let mut uf = UnionFind::new(n);
            for (a, b) in pairs {
                uf.union(a % n, b % n);
            }
            let mut roots = std::collections::HashSet::new();
            for i in 0..n {
                roots.insert(uf.find(i));
            }
            prop_assert_eq!(roots.len(), uf.set_count());
            // Symmetry and reflexivity of same_set.
            for i in 0..n {
                prop_assert!(uf.same_set(i, i));
                for j in 0..n {
                    prop_assert_eq!(uf.same_set(i, j), uf.same_set(j, i));
                }
            }
        });
    }

    /// Union never increases the number of sets and decreases by exactly
    /// one when merging two distinct sets.
    #[test]
    fn union_decrements_or_keeps() {
        prop_check!((
            n in usizes(2..30),
            a in usizes(0..30),
            b in usizes(0..30),
        ) => {
            let mut uf = UnionFind::new(n);
            let before = uf.set_count();
            let merged = uf.union(a % n, b % n);
            let after = uf.set_count();
            if merged {
                prop_assert_eq!(after, before - 1);
            } else {
                prop_assert_eq!(after, before);
            }
        });
    }
}
