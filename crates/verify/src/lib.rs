//! Verification library: quantifying the accuracy loss of an approximated
//! run against the original, non-approximate execution.
//!
//! Implements the error metrics of HPC-MixPBench §III-A.b — Mean Absolute
//! Error ([`mae`]), Root Mean Square Error ([`rmse`]), Mean Square Error
//! ([`mse`]), coefficient of determination ([`r2`]) and Misclassification
//! Rate ([`mcr`]) — plus the [`QualityThreshold`] acceptance check used by
//! every search algorithm.
//!
//! # Example
//!
//! ```
//! use mixp_verify::{MetricKind, QualityThreshold};
//!
//! let reference = [1.0, 2.0, 3.0];
//! let approx = [1.0, 2.0, 3.5];
//! let err = MetricKind::Mae.compare(&reference, &approx);
//! assert!((err - 0.5 / 3.0).abs() < 1e-12);
//! assert!(QualityThreshold::new(1.0).accepts(err));
//! assert!(!QualityThreshold::new(0.1).accepts(err));
//! ```

mod metrics;
mod threshold;

pub use metrics::{mae, max_abs_error, mcr, mse, r2, relative_mae, rmse, MetricKind};
pub use threshold::QualityThreshold;
