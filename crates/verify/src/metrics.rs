//! Error metrics comparing an approximated output against the reference.
//!
//! All metrics take the *reference* (original, all-double) output first and
//! the approximated output second. If either output contains a non-finite
//! value the continuous metrics return `NaN`, which fails every threshold —
//! this is how SRAD's destroyed single-precision output manifests in the
//! paper's Table IV.

use std::fmt;

fn check_lengths(reference: &[f64], approx: &[f64]) {
    assert_eq!(
        reference.len(),
        approx.len(),
        "reference and approximated outputs differ in length"
    );
    assert!(!reference.is_empty(), "outputs must be non-empty");
}

/// Mean Absolute Error: `mean(|ref_i - approx_i|)`.
///
/// The paper's default quality metric for every benchmark except K-means.
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
pub fn mae(reference: &[f64], approx: &[f64]) -> f64 {
    check_lengths(reference, approx);
    let sum: f64 = reference
        .iter()
        .zip(approx)
        .map(|(r, a)| (r - a).abs())
        .sum();
    sum / reference.len() as f64
}

/// Mean Square Error: `mean((ref_i - approx_i)^2)`.
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
pub fn mse(reference: &[f64], approx: &[f64]) -> f64 {
    check_lengths(reference, approx);
    let sum: f64 = reference
        .iter()
        .zip(approx)
        .map(|(r, a)| (r - a) * (r - a))
        .sum();
    sum / reference.len() as f64
}

/// Root Mean Square Error: `sqrt(mse)`. Penalises large errors more than
/// [`mae`], which the paper recommends when large excursions in continuous
/// outputs must be avoided.
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
pub fn rmse(reference: &[f64], approx: &[f64]) -> f64 {
    mse(reference, approx).sqrt()
}

/// Coefficient of determination R²: `1 - SS_res / SS_tot`.
///
/// Returns 1.0 for a perfect reproduction. When the reference is constant
/// (`SS_tot == 0`), returns 1.0 if the approximation is exact and `-inf`
/// otherwise.
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
pub fn r2(reference: &[f64], approx: &[f64]) -> f64 {
    check_lengths(reference, approx);
    let mean = reference.iter().sum::<f64>() / reference.len() as f64;
    let ss_tot: f64 = reference.iter().map(|r| (r - mean) * (r - mean)).sum();
    let ss_res: f64 = reference
        .iter()
        .zip(approx)
        .map(|(r, a)| (r - a) * (r - a))
        .sum();
    if ss_tot == 0.0 {
        if ss_res == 0.0 {
            1.0
        } else {
            f64::NEG_INFINITY
        }
    } else {
        1.0 - ss_res / ss_tot
    }
}

/// Misclassification Rate: the fraction of positions whose (rounded) class
/// labels differ. Used for K-means, whose output is a cluster assignment.
///
/// Values are compared as integer labels after rounding; a non-finite entry
/// on either side counts as misclassified.
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
pub fn mcr(reference: &[f64], approx: &[f64]) -> f64 {
    check_lengths(reference, approx);
    let wrong = reference
        .iter()
        .zip(approx)
        .filter(|(r, a)| {
            if !r.is_finite() || !a.is_finite() {
                true
            } else {
                r.round() as i64 != a.round() as i64
            }
        })
        .count();
    wrong as f64 / reference.len() as f64
}

/// Maximum absolute error: `max_i |ref_i - approx_i|` (L∞). A stricter
/// companion to [`mae`] when single large excursions matter more than the
/// average — one of the extension metrics the verification library is the
/// "single point" for (§III-A.b).
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
pub fn max_abs_error(reference: &[f64], approx: &[f64]) -> f64 {
    check_lengths(reference, approx);
    reference
        .iter()
        .zip(approx)
        .map(|(r, a)| (r - a).abs())
        .fold(0.0, f64::max)
}

/// Mean *relative* absolute error: `mean(|ref_i - approx_i| / max(|ref_i|, ε))`
/// with `ε = 1e-300` guarding exact zeros. Useful when outputs span many
/// orders of magnitude.
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
pub fn relative_mae(reference: &[f64], approx: &[f64]) -> f64 {
    check_lengths(reference, approx);
    let sum: f64 = reference
        .iter()
        .zip(approx)
        .map(|(r, a)| (r - a).abs() / r.abs().max(1e-300))
        .sum();
    sum / reference.len() as f64
}

/// Selects which error metric a benchmark's verification uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MetricKind {
    /// Mean absolute error (default for continuous outputs).
    Mae,
    /// Maximum absolute error (L∞).
    MaxAbs,
    /// Mean relative absolute error.
    RelMae,
    /// Root mean square error.
    Rmse,
    /// Mean square error.
    Mse,
    /// Coefficient of determination. Note: *error* for thresholds is
    /// reported as `1 - R²` so that 0 means perfect.
    R2,
    /// Misclassification rate (K-means).
    Mcr,
}

impl MetricKind {
    /// Computes the error of `approx` against `reference` under this metric.
    ///
    /// For [`MetricKind::R2`] the returned value is `1 - R²` so every metric
    /// shares the "0 is perfect, larger is worse" orientation required by
    /// [`crate::QualityThreshold`].
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length or are empty.
    pub fn compare(self, reference: &[f64], approx: &[f64]) -> f64 {
        match self {
            MetricKind::Mae => mae(reference, approx),
            MetricKind::MaxAbs => max_abs_error(reference, approx),
            MetricKind::RelMae => relative_mae(reference, approx),
            MetricKind::Rmse => rmse(reference, approx),
            MetricKind::Mse => mse(reference, approx),
            MetricKind::R2 => 1.0 - r2(reference, approx),
            MetricKind::Mcr => mcr(reference, approx),
        }
    }

    /// Canonical uppercase name as used in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            MetricKind::Mae => "MAE",
            MetricKind::MaxAbs => "MaxAbs",
            MetricKind::RelMae => "RelMAE",
            MetricKind::Rmse => "RMSE",
            MetricKind::Mse => "MSE",
            MetricKind::R2 => "R2",
            MetricKind::Mcr => "MCR",
        }
    }
}

impl fmt::Display for MetricKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mixp_core::prop::{f64s, i64s, vecs};
    use mixp_core::{prop_assert, prop_assert_eq, prop_check};

    const EPS: f64 = 1e-12;

    #[test]
    fn identical_outputs_have_zero_error() {
        let x = [1.0, -2.0, 3.5];
        assert_eq!(mae(&x, &x), 0.0);
        assert_eq!(mse(&x, &x), 0.0);
        assert_eq!(rmse(&x, &x), 0.0);
        assert_eq!(mcr(&x, &x), 0.0);
        assert_eq!(r2(&x, &x), 1.0);
    }

    #[test]
    fn max_abs_error_known_value() {
        assert_eq!(max_abs_error(&[0.0, 0.0], &[1.0, -3.0]), 3.0);
        assert_eq!(max_abs_error(&[1.0], &[1.0]), 0.0);
    }

    #[test]
    fn relative_mae_known_value() {
        // Errors of 10% and 50%.
        let r = relative_mae(&[10.0, 2.0], &[11.0, 3.0]);
        assert!((r - 0.3).abs() < EPS);
    }

    #[test]
    fn relative_mae_guards_zero_reference() {
        assert!(relative_mae(&[0.0], &[1.0]).is_finite());
    }

    #[test]
    fn max_abs_dominates_mae() {
        let reference = [0.0, 0.0, 0.0];
        let approx = [0.1, 0.2, 0.9];
        assert!(max_abs_error(&reference, &approx) >= mae(&reference, &approx));
    }

    #[test]
    fn mae_known_value() {
        assert!((mae(&[0.0, 0.0], &[1.0, 3.0]) - 2.0).abs() < EPS);
    }

    #[test]
    fn mse_and_rmse_known_values() {
        let m = mse(&[0.0, 0.0], &[1.0, 3.0]);
        assert!((m - 5.0).abs() < EPS);
        assert!((rmse(&[0.0, 0.0], &[1.0, 3.0]) - 5.0f64.sqrt()).abs() < EPS);
    }

    #[test]
    fn r2_half_variance_explained() {
        // reference has variance; approx reproduces mean only.
        let reference = [0.0, 2.0];
        let approx = [1.0, 1.0];
        assert!((r2(&reference, &approx) - 0.0).abs() < EPS);
    }

    #[test]
    fn r2_constant_reference() {
        assert_eq!(r2(&[1.0, 1.0], &[1.0, 1.0]), 1.0);
        assert_eq!(r2(&[1.0, 1.0], &[1.0, 2.0]), f64::NEG_INFINITY);
    }

    #[test]
    fn mcr_counts_label_flips() {
        let reference = [0.0, 1.0, 2.0, 3.0];
        let approx = [0.0, 1.0, 3.0, 2.0];
        assert!((mcr(&reference, &approx) - 0.5).abs() < EPS);
    }

    #[test]
    fn mcr_treats_nonfinite_as_wrong() {
        assert_eq!(mcr(&[1.0], &[f64::NAN]), 1.0);
        assert_eq!(mcr(&[1.0], &[f64::INFINITY]), 1.0);
    }

    #[test]
    fn nan_output_poisons_continuous_metrics() {
        let reference = [1.0, 2.0];
        let approx = [1.0, f64::NAN];
        assert!(mae(&reference, &approx).is_nan());
        assert!(mse(&reference, &approx).is_nan());
        assert!(rmse(&reference, &approx).is_nan());
    }

    #[test]
    #[should_panic]
    fn mismatched_lengths_panic() {
        mae(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    #[should_panic]
    fn empty_outputs_panic() {
        mae(&[], &[]);
    }

    #[test]
    fn compare_r2_is_one_minus_r2() {
        let reference = [0.0, 2.0];
        let approx = [1.0, 1.0];
        assert!((MetricKind::R2.compare(&reference, &approx) - 1.0).abs() < EPS);
    }

    #[test]
    fn metric_names() {
        assert_eq!(MetricKind::Mae.to_string(), "MAE");
        assert_eq!(MetricKind::Mcr.name(), "MCR");
    }

    /// MAE and RMSE are non-negative, symmetric in their arguments, and
    /// RMSE >= MAE >= 0 (power-mean inequality); MSE = RMSE².
    #[test]
    fn metric_inequalities() {
        prop_check!((pairs in vecs((f64s(-1.0e3..1.0e3), f64s(-1.0e3..1.0e3)), 1..50)) => {
            let reference: Vec<f64> = pairs.iter().map(|p| p.0).collect();
            let approx: Vec<f64> = pairs.iter().map(|p| p.1).collect();
            let a = mae(&reference, &approx);
            let r = rmse(&reference, &approx);
            let m = mse(&reference, &approx);
            prop_assert!(a >= 0.0);
            prop_assert!(r + 1e-9 >= a, "rmse {} < mae {}", r, a);
            prop_assert!((m - r * r).abs() <= 1e-6 * m.max(1.0));
            prop_assert_eq!(mae(&approx, &reference), a);
        });
    }

    /// MCR is in [0, 1] and zero iff all rounded labels agree.
    #[test]
    fn mcr_is_a_rate() {
        prop_check!((labels in vecs((i64s(0..5), i64s(0..5)), 1..40)) => {
            let reference: Vec<f64> = labels.iter().map(|p| p.0 as f64).collect();
            let approx: Vec<f64> = labels.iter().map(|p| p.1 as f64).collect();
            let rate = mcr(&reference, &approx);
            prop_assert!((0.0..=1.0).contains(&rate));
            let all_agree = labels.iter().all(|p| p.0 == p.1);
            prop_assert_eq!(rate == 0.0, all_agree);
        });
    }

    /// R² of the exact reproduction is always 1.
    #[test]
    fn r2_perfect_is_one() {
        prop_check!((reference in vecs(f64s(-1.0e3..1.0e3), 1..40)) => {
            prop_assert_eq!(r2(&reference, &reference), 1.0);
        });
    }
}
