//! Quality-threshold acceptance.

use std::fmt;

/// The user-specified quality bound a mixed-precision configuration must
/// satisfy to be accepted by a search.
///
/// The paper's evaluation uses thresholds of `1e-3`, `1e-6` and `1e-8`.
/// A configuration passes iff its error is finite and `error <= bound`;
/// `NaN` errors (destroyed output) never pass.
///
/// # Example
///
/// ```
/// use mixp_verify::QualityThreshold;
///
/// let t = QualityThreshold::new(1e-6);
/// assert!(t.accepts(5e-7));
/// assert!(t.accepts(0.0));
/// assert!(!t.accepts(2e-6));
/// assert!(!t.accepts(f64::NAN));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QualityThreshold {
    bound: f64,
}

impl QualityThreshold {
    /// Creates a threshold with the given error bound.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is negative or not finite.
    pub fn new(bound: f64) -> Self {
        assert!(
            bound.is_finite() && bound >= 0.0,
            "quality bound must be a finite non-negative number"
        );
        QualityThreshold { bound }
    }

    /// The error bound.
    pub fn bound(&self) -> f64 {
        self.bound
    }

    /// Whether an observed error satisfies the bound.
    ///
    /// Non-finite errors (NaN/±inf) are always rejected — they signal a
    /// destroyed or diverged output, like SRAD's all-single run.
    pub fn accepts(&self, error: f64) -> bool {
        error.is_finite() && error <= self.bound
    }

    /// The paper's three evaluation thresholds, loosest first.
    pub fn paper_thresholds() -> [QualityThreshold; 3] {
        [
            QualityThreshold::new(1e-3),
            QualityThreshold::new(1e-6),
            QualityThreshold::new(1e-8),
        ]
    }
}

impl fmt::Display for QualityThreshold {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:e}", self.bound)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mixp_core::prop::f64s;
    use mixp_core::{prop_assert, prop_check};

    #[test]
    fn exact_bound_passes() {
        assert!(QualityThreshold::new(1e-3).accepts(1e-3));
    }

    #[test]
    fn infinity_rejected() {
        let t = QualityThreshold::new(1e300);
        assert!(!t.accepts(f64::INFINITY));
        assert!(!t.accepts(f64::NEG_INFINITY));
    }

    #[test]
    fn zero_bound_accepts_only_zero() {
        let t = QualityThreshold::new(0.0);
        assert!(t.accepts(0.0));
        assert!(!t.accepts(f64::MIN_POSITIVE));
    }

    #[test]
    #[should_panic]
    fn negative_bound_panics() {
        QualityThreshold::new(-1.0);
    }

    #[test]
    #[should_panic]
    fn nan_bound_panics() {
        QualityThreshold::new(f64::NAN);
    }

    #[test]
    fn paper_thresholds_are_ordered() {
        let [a, b, c] = QualityThreshold::paper_thresholds();
        assert!(a.bound() > b.bound() && b.bound() > c.bound());
    }

    #[test]
    fn display_is_scientific() {
        assert_eq!(QualityThreshold::new(1e-6).to_string(), "1e-6");
    }

    /// Acceptance is monotone: if a threshold accepts e, every looser
    /// threshold accepts e too.
    #[test]
    fn acceptance_is_monotone() {
        prop_check!((
            bound in f64s(0.0..1.0),
            looser in f64s(0.0..1.0),
            err in f64s(0.0..2.0),
        ) => {
            let tight = QualityThreshold::new(bound.min(looser));
            let loose = QualityThreshold::new(bound.max(looser));
            if tight.accepts(err) {
                prop_assert!(loose.accepts(err));
            }
        });
    }
}
