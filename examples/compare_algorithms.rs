//! Comparing all six search algorithms on one kernel.
//!
//! ```sh
//! cargo run --release --example compare_algorithms [kernel-name]
//! ```
//!
//! Runs CB, CM, DD, HR, HC and GA on a kernel (default: `eos`) at the
//! paper's kernel threshold (1e-8) and prints one Table III row. Kernels
//! have tiny search spaces (Table II), so even the exhaustive CB baseline
//! is instant — exactly why the paper recommends them for validating new
//! tools.

use mixp_core::{Evaluator, QualityThreshold};
use mixp_harness::{benchmark_by_name, Scale};
use mixp_search::all_algorithms;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "eos".to_string());
    let probe = benchmark_by_name(&name, Scale::Paper).unwrap_or_else(|| {
        eprintln!("unknown benchmark `{name}`; try one of:");
        for n in mixp_harness::benchmark_names() {
            eprintln!("  {n}");
        }
        std::process::exit(2);
    });
    println!(
        "{} — {} ({} vars, {} clusters)\n",
        probe.name(),
        probe.description(),
        probe.program().total_variables(),
        probe.program().total_clusters()
    );

    println!("algorithm                   speedup  quality    evaluated");
    for algo in all_algorithms() {
        let bench = benchmark_by_name(&name, Scale::Paper).expect("checked above");
        let mut ev = Evaluator::new(bench.as_ref(), QualityThreshold::new(1e-8));
        let result = algo.search(&mut ev);
        let speedup = result
            .speedup()
            .map_or("-".to_string(), |s| format!("{s:.2}"));
        let quality = result
            .quality()
            .map_or("-".to_string(), |q| format!("{q:.2e}"));
        println!(
            "{:2}  {:22}  {speedup:<7}  {quality:<9}  {}{}",
            algo.name(),
            algo.full_name(),
            result.evaluated,
            if result.dnf { " (DNF)" } else { "" },
        );
    }
}
