//! Plugging your own benchmark into the suite.
//!
//! ```sh
//! cargo run --release --example custom_benchmark
//! ```
//!
//! HPC-MixPBench is designed to be extended (§III): a new benchmark only
//! needs to (1) declare its program model — variables and the
//! type-dependence edges a pointer-based C implementation would induce —
//! and (2) route its computation through the mixed-precision execution
//! context. Every search algorithm, metric and report then works on it
//! unchanged.
//!
//! The example implements a damped 1-D wave-equation step (a leapfrog
//! scheme over three time levels) and tunes it with delta-debugging and
//! the exhaustive baseline.

use mixp_core::{
    Benchmark, BenchmarkKind, Evaluator, ExecCtx, MetricKind, ProgramBuilder, ProgramModel,
    QualityThreshold, VarId,
};
use mixp_core::synth::SplitMix64;
use mixp_float::MpVec;
use mixp_search::{Combinational, DeltaDebug, SearchAlgorithm};

/// A leapfrog integrator for the damped wave equation
/// `u_tt = c² u_xx − γ u_t` on a 1-D grid.
struct WaveStep {
    program: ProgramModel,
    prev: VarId,
    cur: VarId,
    next: VarId,
    c2: VarId,
    damping: VarId,
    n: usize,
    steps: usize,
    init: Vec<f64>,
}

impl WaveStep {
    fn new(n: usize, steps: usize) -> Self {
        let mut b = ProgramBuilder::new("wave-step");
        let module = b.module("wave.c");
        let f = b.function("leapfrog", module);
        // The three time levels rotate through the same pointers: one
        // cluster.
        let prev = b.array(f, "u_prev");
        let cur = b.array(f, "u_cur");
        let next = b.array(f, "u_next");
        b.bind(prev, cur);
        b.bind(cur, next);
        // The two physics coefficients travel in one parameter struct.
        let c2 = b.scalar(f, "c2");
        let damping = b.scalar(f, "damping");
        b.bind(c2, damping);
        let program = b.build();

        let mut g = SplitMix64::new(0x5741_5645);
        let init: Vec<f64> = (0..n).map(|_| g.uniform(-0.01, 0.01)).collect();
        WaveStep {
            program,
            prev,
            cur,
            next,
            c2,
            damping,
            n,
            steps,
            init,
        }
    }
}

impl Benchmark for WaveStep {
    fn name(&self) -> &str {
        "wave-step"
    }

    fn description(&self) -> &str {
        "Damped 1-D wave equation leapfrog step (custom extension)"
    }

    fn kind(&self) -> BenchmarkKind {
        BenchmarkKind::Kernel
    }

    fn program(&self) -> &ProgramModel {
        &self.program
    }

    fn metric(&self) -> MetricKind {
        MetricKind::Rmse
    }

    fn run(&self, ctx: &mut ExecCtx<'_>) -> Vec<f64> {
        let c2 = mixp_float::MpScalar::new(ctx, self.c2, 0.25);
        let damping = mixp_float::MpScalar::new(ctx, self.damping, 0.02);
        let mut prev = MpVec::from_values(ctx, self.prev, &self.init);
        let mut cur = MpVec::from_values(ctx, self.cur, &self.init);
        let mut next = ctx.alloc_vec(self.next, self.n);
        for _ in 0..self.steps {
            for i in 1..self.n - 1 {
                let lap = cur.get(ctx, i - 1) - 2.0 * cur.get(ctx, i) + cur.get(ctx, i + 1);
                let vel = cur.get(ctx, i) - prev.get(ctx, i);
                let v = cur.get(ctx, i) + (1.0 - damping.get()) * vel + c2.get() * lap;
                ctx.flop(self.next, &[self.cur, self.prev, self.c2, self.damping], 8);
                next.set(ctx, i, v);
            }
            std::mem::swap(&mut prev, &mut cur);
            std::mem::swap(&mut cur, &mut next);
        }
        cur.snapshot()
    }
}

fn main() {
    let bench = WaveStep::new(2048, 50);
    println!(
        "{}: {} variables, {} clusters, metric {}",
        bench.name(),
        bench.program().total_variables(),
        bench.program().total_clusters(),
        bench.metric()
    );

    for algo in [
        Box::new(Combinational::new()) as Box<dyn SearchAlgorithm>,
        Box::new(DeltaDebug::new()),
    ] {
        let mut ev = Evaluator::new(&bench, QualityThreshold::new(1e-6));
        let result = algo.search(&mut ev);
        println!("{}: {}", algo.full_name(), result);
    }
}
