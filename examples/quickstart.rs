//! Quickstart: tune one benchmark with one search algorithm.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Picks the K-means application (the paper's running example, Listing 4),
//! runs the delta-debugging search under a 1e-3 quality threshold, and
//! prints the mixed-precision configuration it finds.

use mixp_core::{Evaluator, Granularity, QualityThreshold};
use mixp_harness::{benchmark_by_name, Scale};
use mixp_search::{DeltaDebug, SearchAlgorithm};

fn main() {
    // 1. Pick a benchmark from the suite (17 available; see
    //    `mixp_harness::benchmark_names()`).
    let bench = benchmark_by_name("kmeans", Scale::Paper).expect("kmeans is in the registry");
    println!("benchmark: {} — {}", bench.name(), bench.description());

    // 2. The program model is what the type-dependence analysis computed:
    //    tunable variables grouped into must-share-type clusters.
    let program = bench.program();
    println!(
        "search space: {} variables in {} clusters",
        program.total_variables(),
        program.total_clusters()
    );

    // 3. Build an evaluator: it runs the all-double reference and then
    //    verifies every candidate against it under the quality threshold.
    let mut ev = Evaluator::new(bench.as_ref(), QualityThreshold::new(1e-3));

    // 4. Run a search.
    let result = DeltaDebug::new().search(&mut ev);
    println!("search finished: {result}");

    // 5. Inspect the best configuration: which clusters went single?
    if let Some(best) = &result.best {
        let space = SpaceView::new(program);
        println!("lowered variables ({} of {}):", best.config.lowered_count(), program.total_variables());
        for v in best.config.lowered_vars() {
            println!("  {} ({})", program.registry().name(v), space.cluster_label(v));
        }
    }
}

/// Small helper to label a variable's cluster.
struct SpaceView<'p> {
    program: &'p mixp_core::ProgramModel,
}

impl<'p> SpaceView<'p> {
    fn new(program: &'p mixp_core::ProgramModel) -> Self {
        let _ = Granularity::Clusters; // the granularity DD searched at
        SpaceView { program }
    }

    fn cluster_label(&self, v: mixp_core::VarId) -> String {
        match self.program.clustering().cluster_of(v) {
            Some(c) => format!("cluster {c}"),
            None => "untunable".to_string(),
        }
    }
}
