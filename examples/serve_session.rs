//! A complete campaign-service session, in-process: starts the daemon,
//! speaks the raw line protocol through the blocking client, and prints
//! every request/response pair — the transcript in the README is this
//! example's output.
//!
//!     cargo run --release --example serve_session

use mixp_serve::{Client, DaemonConfig, DaemonHandle, ServeConfig};
use std::time::{Duration, Instant};

fn exchange(client: &mut Client, line: &str) -> mixp_harness::json::Json {
    println!(">>> {line}");
    let doc = client.request(line).expect("daemon answers");
    println!("<<< {}", mixp_harness::checkpoint::compact(&doc));
    doc
}

fn main() {
    let dir = std::env::temp_dir().join(format!("mixp-serve-demo-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut serve = ServeConfig::default();
    serve.quotas.push(("intern".to_string(), 10));
    let daemon = DaemonHandle::start(DaemonConfig {
        socket: dir.join("serve.sock"),
        state_dir: dir.join("state"),
        serve,
    })
    .expect("daemon start");
    let mut client =
        Client::connect_within(&dir.join("serve.sock"), Duration::from_secs(10)).expect("connect");

    // Submit a two-cell campaign for tenant "alice", with an idempotency key.
    let submit = r#"{"op":"submit","tenant":"alice","key":"nightly-7","jobs":[{"benchmark":"tridiag","algorithm":"DD","threshold":0.001,"budget":8},{"benchmark":"innerprod","algorithm":"CM","threshold":0.001,"budget":6}]}"#;
    let ack = exchange(&mut client, submit);
    let id = ack.get("id").and_then(mixp_harness::json::Json::as_f64).expect("id") as u64;

    // Resubmitting the same key dedupes instead of admitting twice.
    exchange(&mut client, submit);

    // A tenant over its evaluation-budget quota gets a typed rejection.
    exchange(
        &mut client,
        r#"{"op":"submit","tenant":"intern","jobs":[{"benchmark":"eos","algorithm":"DD","threshold":0.001,"budget":64}]}"#,
    );

    // Garbage is answered, never fatal.
    exchange(&mut client, r#"{"op":"frobnicate"}"#);

    // Poll status until the campaign is terminal, then show the ledger.
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let doc = client
            .request(&format!(r#"{{"op":"status","id":{id}}}"#))
            .expect("status");
        let state = doc.get("state").and_then(mixp_harness::json::Json::as_str);
        if state == Some("done") || state == Some("cancelled") {
            break;
        }
        assert!(Instant::now() < deadline, "campaign never finished");
        std::thread::sleep(Duration::from_millis(20));
    }
    exchange(&mut client, &format!(r#"{{"op":"status","id":{id}}}"#));
    exchange(&mut client, r#"{"op":"list"}"#);
    exchange(&mut client, r#"{"op":"shutdown"}"#);
    daemon.wait();
    let _ = std::fs::remove_dir_all(&dir);
}
