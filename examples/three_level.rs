//! Three-level (half / single / double) mixed-precision search.
//!
//! ```sh
//! cargo run --release --example three_level [kernel-name]
//! ```
//!
//! The paper frames the search space as `p^loc` for an architecture with
//! `p` precision levels — "p = 3 for an architecture that supports half,
//! single, and double precision" (§II) — but evaluates two levels. This
//! reproduction supports binary16 end-to-end (storage rounding, cost
//! model, mp I/O), and this example enumerates the full three-level space
//! of a kernel with `CB3`, then prints the accuracy/speedup frontier.

use mixp_core::{Evaluator, Precision, QualityThreshold};
use mixp_harness::{benchmark_by_name, Scale};
use mixp_search::{MultiPrecisionExhaustive, SearchAlgorithm};

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "hydro-1d".to_string());
    let bench = benchmark_by_name(&name, Scale::Paper).unwrap_or_else(|| {
        eprintln!("unknown benchmark `{name}`");
        std::process::exit(2);
    });
    let program = bench.program();
    let clusters = program.total_clusters();
    println!(
        "{}: {} clusters → 3^{} = {} assignments\n",
        bench.name(),
        clusters,
        clusters,
        3u64.pow(clusters as u32)
    );

    // Enumerate the whole frontier at a relaxed threshold so every
    // configuration's quality is visible.
    let mut ev = Evaluator::new(bench.as_ref(), QualityThreshold::new(1e-1));
    let result = MultiPrecisionExhaustive::new().search(&mut ev);
    println!("CB3: {result}\n");

    // Show the per-assignment landscape explicitly.
    println!("assignment (per cluster)           speedup  quality");
    let levels = [Precision::Half, Precision::Single, Precision::Double];
    let total = 3u64.pow(clusters as u32);
    let mut rows = Vec::new();
    for mut code in 0..total {
        let mut assignment = Vec::with_capacity(clusters);
        for _ in 0..clusters {
            assignment.push(levels[(code % 3) as usize]);
            code /= 3;
        }
        let cfg = program.config_from_cluster_levels(&assignment);
        let rec = ev.evaluate(&cfg).expect("memoised: no budget needed");
        let label: Vec<&str> = assignment.iter().map(|p| p.name()).collect();
        rows.push((label.join(","), rec.speedup, rec.quality));
    }
    rows.sort_by(|a, b| b.1.total_cmp(&a.1));
    for (label, speedup, quality) in rows {
        println!("{label:32}  {speedup:>6.2}   {quality:.2e}");
    }

    println!();
    println!("Half-precision storage buys more speedup (4× SIMD width, half");
    println!("the footprint again) at a much larger accuracy cost — the");
    println!("three-level frontier the paper's p = 3 framing anticipates.");
}
