//! Tuning one application across quality thresholds.
//!
//! ```sh
//! cargo run --release --example tune_blackscholes
//! ```
//!
//! Reproduces the per-application story of the paper's Table V for
//! Blackscholes: run delta-debugging and the genetic search under the
//! three thresholds (1e-3, 1e-6, 1e-8) and watch the achievable speedup
//! and the search effort change as the quality requirement tightens.

use mixp_core::{EvaluatorBuilder, QualityThreshold};
use mixp_harness::{benchmark_by_name, Scale};
use mixp_search::{DeltaDebug, Genetic, GeneticParams, SearchAlgorithm};

fn main() {
    let algorithms: Vec<Box<dyn SearchAlgorithm>> = vec![
        Box::new(DeltaDebug::new()),
        Box::new(Genetic::new(GeneticParams::default())),
    ];

    println!("threshold  algorithm  speedup  quality     evaluated");
    for threshold in [1e-3, 1e-6, 1e-8] {
        for algo in &algorithms {
            // A fresh benchmark + evaluator per run: searches are
            // independent analyses, like separate harness jobs.
            let bench =
                benchmark_by_name("blackscholes", Scale::Paper).expect("registry has blackscholes");
            let mut ev = EvaluatorBuilder::new(QualityThreshold::new(threshold))
                .budget(512)
                .build(bench.as_ref());
            let result = algo.search(&mut ev);
            let (speedup, quality) = match (&result.speedup(), &result.quality()) {
                (Some(s), Some(q)) => (format!("{s:.2}"), format!("{q:.2e}")),
                _ => ("-".to_string(), "-".to_string()),
            };
            println!(
                "{threshold:<9.0e}  {:<9}  {speedup:<7}  {quality:<10}  {}{}",
                algo.name(),
                result.evaluated,
                if result.dnf { " (DNF)" } else { "" },
            );
        }
    }

    println!();
    println!("Expected shape (paper §IV-B2): DD's evaluated-configuration count");
    println!("grows sharply as the threshold tightens, while GA stays nearly");
    println!("constant — but DD typically finds the faster configuration.");
}
