#!/usr/bin/env bash
# Hermetic-build gate for the HPC-MixPBench workspace.
#
# The workspace has a zero-external-dependency policy: every crate must be
# buildable and testable fully offline, with an *empty* registry cache.
# This script enforces both halves of that policy:
#
#   1. A grep guard that fails if any Cargo.toml declares a dependency that
#      is not a path dependency (i.e. anything that would hit crates.io).
#   2. `cargo build --release --offline && cargo test -q --offline` with
#      CARGO_HOME pointed at a fresh empty directory, proving no cached
#      registry state is being silently relied upon.
#
# It also smoke-runs every `[[bench]]` target with MIXP_BENCH_QUICK=1
# (single sample, no warmup) so a broken bench fails the gate instead of
# rotting until the next manual `cargo bench` — including
# `bench_obs_overhead`, the noop-tracer-costs-nothing watchdog.
#
# Structural guards ride along: the fault-tolerant harness paths must
# stay panic-free, the `mixp-obs` crate must stay dependency-free with
# wall-clock access confined to its clock.rs module, raw thread creation
# must stay confined to `crates/pool` (plus the sanctioned watchdog
# supervisor thread in crates/harness/src/watchdog.rs and the campaign
# daemon's accept/dispatch/connection threads in crates/serve) so
# MIXP_WORKERS remains the single bound on campaign parallelism, the
# `mixp-ir` crate must stay dependency-free with precision semantics
# confined to its round.rs/plan.rs so plans stay bit-identical to the
# direct path, and Unix-domain-socket use must stay confined to
# `crates/serve` so the batch harness keeps zero network surface.
#
# Finally the loadgen fleet runs in quick mode (MIXP_LOADGEN_QUICK=1):
# a real daemon, concurrent multi-tenant clients, fault injection, a
# SIGKILL-and-restart, and bit-identity spot checks — the campaign
# service's end-to-end gate.
#
# Run from anywhere: scripts/check_hermetic.sh

set -euo pipefail
cd "$(dirname "$0")/.."

echo "== [1/10] grep guard: only path dependencies allowed =="
violations=$(find . -name Cargo.toml -not -path './target/*' -print0 | xargs -0 awk '
  FNR == 1 { section = "" }
  /^\[/ { section = $0 }
  section ~ /dependencies/ && /=/ && !/^[[:space:]]*#/ {
    if ($0 !~ /path[[:space:]]*=/ && $0 !~ /workspace[[:space:]]*=[[:space:]]*true/)
      printf "%s:%d: %s\n", FILENAME, FNR, $0
  }
')
if [ -n "$violations" ]; then
  echo "$violations"
  echo "error: non-path dependencies found — the workspace must stay hermetic" >&2
  exit 1
fi
echo "ok: no non-path dependencies"

echo "== [2/10] panic guard: fault-tolerant harness paths must not panic =="
# The campaign execution path promises typed errors instead of aborts:
# no unwrap()/expect()/panic! in non-test code of the scheduler, job,
# checkpoint, faultplan, watchdog and cancellation modules. Test modules
# (below the #[cfg(test)] marker) are exempt, as is the deliberate
# `injected fault` panic that the fault injector uses to *simulate* a
# crashing benchmark.
panic_violations=$(for f in crates/harness/src/job.rs \
                            crates/harness/src/scheduler.rs \
                            crates/harness/src/checkpoint.rs \
                            crates/harness/src/faultplan.rs \
                            crates/harness/src/evalcache.rs \
                            crates/harness/src/watchdog.rs \
                            crates/mpfloat/src/cancel.rs; do
  awk -v file="$f" '
    /#\[cfg\(test\)\]/ { exit }
    /\.unwrap\(\)|\.expect\(|panic!\(|unreachable!\(/ {
      if ($0 !~ /injected fault/)
        printf "%s:%d: %s\n", file, FNR, $0
    }
  ' "$f"
done)
if [ -n "$panic_violations" ]; then
  echo "$panic_violations"
  echo "error: panicking call in a fault-isolated code path — return a JobError instead" >&2
  exit 1
fi
echo "ok: campaign execution paths are panic-free"

echo "== [3/10] fast-path guard: benchmark hot loops must use the bulk layer =="
# The speedup model's wall-clock claims rest on benchmarks going through
# the MpVec fast path: per-handle cached rounding and bulk accounting.
# Reaching around it — rounding manually with `round_to`, or reading
# storage with the test-only `.peek(` accessor — silently desynchronises
# values or op counts from the traced run. Since the batched-tracing
# refactor, the same holds for the raw tracing layer: per-element
# `trace_float`/`trace_untyped` calls and direct `record_loads`/
# `record_stores` accounting in benchmark code reintroduce the traced
# slow path that `StreamGroup::commit` and the bulk primitives replaced
# (the sanctioned data-dependent escape hatch is `MpVec::trace_element`
# plus `bulk_loads`). Test modules (below the #[cfg(test)] marker) are
# exempt: peeking is exactly what tests are for.
fastpath_violations=$(find crates/kernels/src crates/apps/src -name '*.rs' -print0 | \
  xargs -0 -n1 awk '
    /#\[cfg\(test\)\]/ { exit }
    /round_to[[:space:]]*\(|\.peek[[:space:]]*\(|trace_float[[:space:]]*\(|trace_untyped[[:space:]]*\(|record_loads[[:space:]]*\(|record_stores[[:space:]]*\(/ && !/^[[:space:]]*\/\// {
      printf "%s:%d: %s\n", FILENAME, FNR, $0
    }
  ')
if [ -n "$fastpath_violations" ]; then
  echo "$fastpath_violations"
  echo "error: kernel/app non-test code bypasses the MpVec fast path — use the bulk primitives or StreamGroup::commit (trace_element for gathers)" >&2
  exit 1
fi
echo "ok: kernels and apps stay on the bulk/fast-path API"

echo "== [4/10] obs purity guard: zero deps, wall clock quarantined in clock.rs =="
# The observability crate underpins the determinism story twice over: it
# must stay dependency-free (it is linked into every other crate), and its
# trace/metrics layers must never read wall-clock time themselves — all
# ordering comes from logical sequence numbers, and the *only* module
# allowed to touch `Instant`/`SystemTime` is the opt-in clock.rs
# enrichment. A violation here silently turns every trace nondeterministic.
obs_dep_violations=$(awk '
  /^\[/ { section = $0 }
  section ~ /dependencies/ && /=/ && !/^[[:space:]]*#/ {
    printf "crates/obs/Cargo.toml:%d: %s\n", FNR, $0
  }
' crates/obs/Cargo.toml)
if [ -n "$obs_dep_violations" ]; then
  echo "$obs_dep_violations"
  echo "error: crates/obs must have no dependencies at all — not even path ones" >&2
  exit 1
fi
# Comment lines are exempt: the modules document the very rule enforced here.
obs_clock_violations=$(awk '
  /Instant|SystemTime/ && $0 !~ /^[[:space:]]*\/\// {
    printf "%s:%d: %s\n", FILENAME, FNR, $0
  }
' crates/obs/src/trace.rs crates/obs/src/metrics.rs crates/obs/src/sink.rs)
if [ -n "$obs_clock_violations" ]; then
  echo "$obs_clock_violations"
  echo "error: wall-clock access outside crates/obs/src/clock.rs — use the logical clock" >&2
  exit 1
fi
echo "ok: crates/obs is dependency-free and logically clocked"

echo "== [5/10] thread-confinement guard: raw threads only inside crates/pool =="
# The oversubscription fix rests on one invariant: all parallelism flows
# through the work-stealing pool, sized once by MIXP_WORKERS. Raw
# `thread::spawn`/`thread::scope`/`thread::Builder` anywhere else quietly
# reintroduces a second thread population the pool cannot see or bound.
# Sanctioned exceptions, each accounted for in the DESIGN.md thread
# budgets: the harness watchdog's single supervisor thread (so it can
# cancel jobs whose own threads are wedged), the campaign daemon's
# accept/dispatch/connection threads (control plane only — cell
# *execution* still flows through the one shared pool), and the loadgen
# binary's client fleet (a test driver, not harness code). Test modules
# (below the #[cfg(test)] marker) are exempt — tests may spin up threads
# to exercise concurrency — as are comment lines.
thread_violations=$(find crates -name '*.rs' -not -path 'crates/pool/*' \
    -not -path 'crates/harness/src/watchdog.rs' \
    -not -path 'crates/serve/src/daemon.rs' \
    -not -path 'crates/serve/src/bin/loadgen.rs' -print0 | \
  xargs -0 -n1 awk '
    /#\[cfg\(test\)\]/ { exit }
    /thread::spawn|thread::scope|thread::Builder/ && !/^[[:space:]]*\/\// {
      printf "%s:%d: %s\n", FILENAME, FNR, $0
    }
  ')
if [ -n "$thread_violations" ]; then
  echo "$thread_violations"
  echo "error: raw thread creation outside crates/pool — run the work on mixp_pool::Pool instead" >&2
  exit 1
fi
echo "ok: thread creation is confined to the pool crate"

echo "== [6/10] IR purity guard: crates/ir dependency-free and precision-agnostic =="
# The program IR is the layer future backends hang off, so it must know
# nothing about ExecCtx, tracers or benchmarks: its Cargo.toml declares no
# dependencies at all (not even workspace ones). Precision semantics are
# likewise confined: numeric rounding lives in round.rs (RoundMode), and
# the one sanctioned consumer that inlines those semantics is the plan
# interpreter's fused loops in plan.rs. Everywhere else — prog, analyze,
# compile, lib — the IR must stay pure f64 with symbolic precision only,
# or config-specialized plans quietly stop being bit-identical to the
# hand-written execution path. Test modules and comments are exempt.
ir_dep_violations=$(awk '
  /^\[/ { section = $0 }
  section ~ /dependencies/ && /=/ && !/^[[:space:]]*#/ {
    printf "crates/ir/Cargo.toml:%d: %s\n", FNR, $0
  }
' crates/ir/Cargo.toml)
if [ -n "$ir_dep_violations" ]; then
  echo "$ir_dep_violations"
  echo "error: crates/ir must have no dependencies at all — not even path ones" >&2
  exit 1
fi
ir_purity_violations=$(find crates/ir/src -name '*.rs' \
    -not -name round.rs -not -name plan.rs -print0 | \
  xargs -0 -n1 awk '
    /#\[cfg\(test\)\]/ { exit }
    /f32|round_to[[:space:]]*\(/ && !/^[[:space:]]*\/\// {
      printf "%s:%d: %s\n", FILENAME, FNR, $0
    }
  ')
if [ -n "$ir_purity_violations" ]; then
  echo "$ir_purity_violations"
  echo "error: precision-specific code outside crates/ir round.rs/plan.rs — express it as a RoundMode" >&2
  exit 1
fi
echo "ok: crates/ir is dependency-free and precision-agnostic outside round.rs/plan.rs"

echo "== [7/10] socket-confinement guard: Unix sockets only inside crates/serve =="
# The campaign service is deliberately the workspace's only network-ish
# surface, and a Unix-domain one at that. `UnixListener`/`UnixStream`
# creeping into any other crate would give the batch harness an ambient
# I/O capability its determinism and hermeticity story doesn't account
# for. Test modules and comments are exempt (integration tests connect
# to the daemon on purpose).
socket_violations=$(find crates -name '*.rs' -not -path 'crates/serve/*' -print0 | \
  xargs -0 -n1 awk '
    /#\[cfg\(test\)\]/ { exit }
    /UnixListener|UnixStream/ && !/^[[:space:]]*\/\// {
      printf "%s:%d: %s\n", FILENAME, FNR, $0
    }
  ')
if [ -n "$socket_violations" ]; then
  echo "$socket_violations"
  echo "error: Unix-domain-socket use outside crates/serve — the harness proper must stay I/O-free" >&2
  exit 1
fi
echo "ok: socket use is confined to the serve crate"

echo "== [8/10] offline build + test with an empty CARGO_HOME =="
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
export CARGO_HOME="$tmp/cargo_home"
mkdir -p "$CARGO_HOME"

cargo build --release --offline
cargo test -q --offline

echo "== [9/10] bench smoke: every [[bench]] target runs under MIXP_BENCH_QUICK =="
MIXP_BENCH_QUICK=1 cargo bench --offline

echo "== [10/10] loadgen smoke: the campaign-service fleet in quick mode =="
# Spawns a real daemon, drives it with concurrent multi-tenant clients,
# SIGKILLs and restarts it mid-run, and asserts terminal states, exact
# quota accounting and bit-identical outcomes. Quick mode keeps it to a
# couple hundred campaigns.
MIXP_LOADGEN_QUICK=1 ./target/release/loadgen

echo "hermetic check passed"
