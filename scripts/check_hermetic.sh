#!/usr/bin/env bash
# Hermetic-build gate for the HPC-MixPBench workspace.
#
# The workspace has a zero-external-dependency policy: every crate must be
# buildable and testable fully offline, with an *empty* registry cache.
# This script enforces both halves of that policy:
#
#   1. A grep guard that fails if any Cargo.toml declares a dependency that
#      is not a path dependency (i.e. anything that would hit crates.io).
#   2. `cargo build --release --offline && cargo test -q --offline` with
#      CARGO_HOME pointed at a fresh empty directory, proving no cached
#      registry state is being silently relied upon.
#
# Run from anywhere: scripts/check_hermetic.sh

set -euo pipefail
cd "$(dirname "$0")/.."

echo "== [1/2] grep guard: only path dependencies allowed =="
violations=$(find . -name Cargo.toml -not -path './target/*' -print0 | xargs -0 awk '
  FNR == 1 { section = "" }
  /^\[/ { section = $0 }
  section ~ /dependencies/ && /=/ && !/^[[:space:]]*#/ {
    if ($0 !~ /path[[:space:]]*=/ && $0 !~ /workspace[[:space:]]*=[[:space:]]*true/)
      printf "%s:%d: %s\n", FILENAME, FNR, $0
  }
')
if [ -n "$violations" ]; then
  echo "$violations"
  echo "error: non-path dependencies found — the workspace must stay hermetic" >&2
  exit 1
fi
echo "ok: no non-path dependencies"

echo "== [2/2] offline build + test with an empty CARGO_HOME =="
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
export CARGO_HOME="$tmp/cargo_home"
mkdir -p "$CARGO_HOME"

cargo build --release --offline
cargo test -q --offline

echo "hermetic check passed"
