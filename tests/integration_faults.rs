//! Integration tests for fault-tolerant campaign execution: a campaign
//! containing jobs that panic, return NaN quality, silently corrupt their
//! output, burn wall-clock, starve their budget and exceed their deadline
//! completes with typed per-cell failures, renders as FAILED(reason) rows,
//! and a killed-then-resumed run re-executes only the unfinished cells.

use mixp_harness::faultplan::Fault;
use mixp_harness::job::JobError;
use mixp_harness::report::render_grouped;
use mixp_harness::scheduler::{
    run_campaign, run_campaign_with_stats, CampaignOptions, RetryPolicy,
};
use mixp_harness::{interchange, FaultPlan, Job, Scale};

fn jobs(names: &[&str]) -> Vec<Job> {
    names
        .iter()
        .map(|b| Job::new(b, "DD", 1e-3, Scale::Small))
        .collect()
}

fn temp_path(tag: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("mixp-itest-{tag}-{}", std::process::id()));
    std::fs::remove_file(&p).ok();
    p
}

/// The acceptance scenario of the fault-tolerance work: one campaign with
/// a panicking cell, a NaN-quality cell, a starved cell and a
/// deadline-exceeded cell still completes, reporting each failure with its
/// typed reason while healthy cells produce normal results.
#[test]
fn mixed_fault_campaign_completes_with_typed_reasons() {
    let jobs = jobs(&["tridiag", "innerprod", "eos", "hydro-1d", "iccg"]);
    let opts = CampaignOptions {
        workers: 2,
        faults: FaultPlan::new()
            .inject(1, Fault::Panic { at_eval: 0 }, u32::MAX)
            .inject(2, Fault::NanOutput { from_eval: 0 }, u32::MAX)
            .inject(3, Fault::StarveBudget, u32::MAX)
            .inject(4, Fault::ZeroDeadline, u32::MAX),
        ..CampaignOptions::default()
    };
    let outcomes = run_campaign(&jobs, &opts);
    assert_eq!(outcomes.len(), 5);
    assert!(outcomes[0].outcome.is_ok(), "healthy cell unaffected");
    assert!(matches!(outcomes[1].outcome, Err(JobError::Panicked(_))));
    assert!(matches!(outcomes[2].outcome, Err(JobError::NonFiniteQuality)));
    assert!(matches!(
        outcomes[3].outcome,
        Err(JobError::BudgetExhausted { .. })
    ));
    assert!(matches!(
        outcomes[4].outcome,
        Err(JobError::DeadlineExceeded { .. })
    ));

    // The report renders the failures instead of aborting.
    let groups: Vec<Vec<_>> = outcomes.chunks(1).map(<[_]>::to_vec).collect();
    let table = render_grouped(&groups, &["DD"]);
    assert!(table.contains("FAILED(panic)"), "{table}");
    assert!(table.contains("FAILED(non-finite)"), "{table}");
    assert!(table.contains("FAILED(budget)"), "{table}");
    assert!(table.contains("FAILED(deadline)"), "{table}");
}

/// A transient fault that clears after the first attempt is healed by the
/// retry policy; a permanent one still fails after exhausting attempts.
#[test]
fn retry_heals_transient_faults_only() {
    let jobs = jobs(&["tridiag", "innerprod"]);
    let opts = CampaignOptions {
        workers: 1,
        retry: RetryPolicy::attempts(3),
        faults: FaultPlan::new()
            .inject(0, Fault::Panic { at_eval: 0 }, 2) // clears on attempt 3
            .inject(1, Fault::Panic { at_eval: 0 }, u32::MAX),
        ..CampaignOptions::default()
    };
    let outcomes = run_campaign(&jobs, &opts);
    assert_eq!(outcomes[0].attempts, 3);
    assert!(outcomes[0].outcome.is_ok(), "fault cleared within budget");
    assert_eq!(outcomes[1].attempts, 3, "permanent fault exhausts retries");
    assert!(outcomes[1].outcome.is_err());
}

/// Checkpoint/resume across "kills": the first (faulty) run checkpoints
/// its successes; the resumed run restores them without re-execution and
/// re-runs only the previously failed cells.
#[test]
fn killed_campaign_resumes_without_rerunning_finished_cells() {
    let path = temp_path("resume");
    let jobs = jobs(&["tridiag", "innerprod", "eos"]);

    // First run: the middle cell panics, the others complete and are
    // journaled. This stands in for a campaign killed partway through.
    let first = run_campaign(
        &jobs,
        &CampaignOptions {
            workers: 1,
            faults: FaultPlan::new().inject(1, Fault::Panic { at_eval: 0 }, u32::MAX),
            checkpoint: Some(path.clone()),
            ..CampaignOptions::default()
        },
    );
    assert!(first[0].outcome.is_ok());
    assert!(first[1].outcome.is_err());
    assert!(first[2].outcome.is_ok());

    // Resume without the fault: finished cells come back from the journal
    // (attempts == 0), only the failed cell is executed.
    let second = run_campaign(
        &jobs,
        &CampaignOptions {
            workers: 2,
            checkpoint: Some(path.clone()),
            ..CampaignOptions::default()
        },
    );
    assert!(second[0].from_checkpoint && second[0].attempts == 0);
    assert!(second[2].from_checkpoint && second[2].attempts == 0);
    assert!(!second[1].from_checkpoint);
    assert!(second[1].outcome.is_ok(), "failed cell re-ran clean");

    // Restored results are bit-identical in the metrics that matter.
    for i in [0usize, 2] {
        let (a, b) = (first[i].result().unwrap(), second[i].result().unwrap());
        assert_eq!(a.result.evaluated, b.result.evaluated);
        assert_eq!(a.result.speedup(), b.result.speedup());
        assert_eq!(a.result.quality(), b.result.quality());
    }

    // A third run finds everything checkpointed.
    let third = run_campaign(
        &jobs,
        &CampaignOptions {
            workers: 2,
            checkpoint: Some(path.clone()),
            ..CampaignOptions::default()
        },
    );
    assert!(third.iter().all(|o| o.from_checkpoint));
    std::fs::remove_file(&path).ok();
}

/// Permanent failures are journaled: a resumed campaign reports the
/// historical FAILED cell (attempts == 0, from_checkpoint) instead of
/// re-running a deterministic failure, while transient failures still
/// re-run.
#[test]
fn resumed_campaign_reports_historical_permanent_failures() {
    let path = temp_path("perm-fail");
    let jobs = vec![
        Job::new("tridiag", "DD", 1e-3, Scale::Small),
        Job::new("no-such-bench", "DD", 1e-3, Scale::Small), // permanent
        Job::new("eos", "DD", 1e-3, Scale::Small),
    ];
    let opts = CampaignOptions {
        workers: 2,
        // The *transient* fault on cell 2 must not be journaled.
        faults: FaultPlan::new().inject(2, Fault::Panic { at_eval: 0 }, u32::MAX),
        checkpoint: Some(path.clone()),
        ..CampaignOptions::default()
    };
    let first = run_campaign(&jobs, &opts);
    assert!(first[0].outcome.is_ok());
    assert!(matches!(
        first[1].outcome,
        Err(JobError::UnknownBenchmark(_))
    ));
    assert!(matches!(first[2].outcome, Err(JobError::Panicked(_))));

    // Resume without the fault plan: the success and the permanent failure
    // both restore; only the transiently-failed cell re-runs.
    let second = run_campaign(
        &jobs,
        &CampaignOptions {
            workers: 2,
            checkpoint: Some(path.clone()),
            ..CampaignOptions::default()
        },
    );
    assert!(second[0].from_checkpoint && second[0].attempts == 0);
    assert!(second[1].from_checkpoint && second[1].attempts == 0);
    assert!(matches!(
        second[1].outcome,
        Err(JobError::UnknownBenchmark(_))
    ));
    assert!(!second[2].from_checkpoint, "transient failure re-runs");
    assert!(second[2].outcome.is_ok());

    // The restored failure renders as a FAILED cell like a fresh one.
    let groups: Vec<Vec<_>> = second.chunks(1).map(<[_]>::to_vec).collect();
    let table = render_grouped(&groups, &["DD"]);
    assert!(table.contains("FAILED(unknown-benchmark)"), "{table}");
    std::fs::remove_file(&path).ok();
}

/// The campaign-wide shared cache produces hits across a multi-algorithm
/// campaign and surfaces them in the interchange JSON; faulted cells never
/// touch the cache.
#[test]
fn campaign_shared_cache_hits_surface_in_the_report() {
    let jobs: Vec<Job> = ["CB", "CM", "DD", "HR", "HC", "GA"]
        .iter()
        .map(|a| Job::new("innerprod", a, 1e-3, Scale::Small))
        .collect();
    let (outcomes, stats) = run_campaign_with_stats(
        &jobs,
        &CampaignOptions {
            workers: 3,
            ..CampaignOptions::default()
        },
    );
    assert!(outcomes.iter().all(|o| o.outcome.is_ok()));
    assert!(
        stats.shared_cache_hits > 0,
        "six algorithms over one benchmark must share configurations"
    );
    let json = interchange::outcomes_to_json_with_stats(&outcomes, &stats);
    assert!(json.contains("\"shared_cache\""), "{json}");
    assert!(json.contains("\"hits\""), "{json}");

    // A faulted campaign keeps its cache cold for the faulted cell but
    // still completes; the injected NaN output must not poison results of
    // the healthy sibling cells.
    let (faulted, _) = run_campaign_with_stats(
        &jobs,
        &CampaignOptions {
            workers: 3,
            faults: FaultPlan::new().inject(0, Fault::NanOutput { from_eval: 0 }, u32::MAX),
            ..CampaignOptions::default()
        },
    );
    assert!(matches!(
        faulted[0].outcome,
        Err(JobError::NonFiniteQuality)
    ));
    for (h, f) in outcomes.iter().zip(&faulted).skip(1) {
        let (h, f) = (h.result().unwrap(), f.result().unwrap());
        assert_eq!(h.result.evaluated, f.result.evaluated);
        assert_eq!(h.result.speedup(), f.result.speedup());
    }
}

/// Silently corrupted output — finite but irreproducible values — is
/// caught by the job's integrity probe before any search runs, reported
/// with its own typed reason, and journaled as *permanent*: a resumed
/// campaign restores the historical failure instead of re-running it.
#[test]
fn corrupt_output_is_detected_and_journaled_as_permanent() {
    let path = temp_path("corrupt");
    let jobs = jobs(&["tridiag", "innerprod"]);
    let first = run_campaign(
        &jobs,
        &CampaignOptions {
            workers: 2,
            faults: FaultPlan::new().inject(1, Fault::CorruptOutput { from_eval: 0 }, u32::MAX),
            checkpoint: Some(path.clone()),
            ..CampaignOptions::default()
        },
    );
    assert!(first[0].outcome.is_ok(), "healthy sibling unaffected");
    assert!(matches!(first[1].outcome, Err(JobError::CorruptOutput)));

    // Resume without the fault plan: the corruption verdict is restored
    // from the journal (attempts == 0) rather than re-executed — a benchmark
    // that produced irreproducible numbers once cannot be trusted on retry.
    let second = run_campaign(
        &jobs,
        &CampaignOptions {
            workers: 2,
            checkpoint: Some(path.clone()),
            ..CampaignOptions::default()
        },
    );
    assert!(second[1].from_checkpoint && second[1].attempts == 0);
    assert!(matches!(second[1].outcome, Err(JobError::CorruptOutput)));

    let groups: Vec<Vec<_>> = second.chunks(1).map(<[_]>::to_vec).collect();
    let table = render_grouped(&groups, &["DD"]);
    assert!(table.contains("FAILED(corrupt-output)"), "{table}");
    let mut cache = path.clone().into_os_string();
    cache.push(".cache.jsonl");
    std::fs::remove_file(cache).ok();
    std::fs::remove_file(&path).ok();
}

/// A benchmark that consumes real wall-clock time inside each evaluation
/// exhausts the campaign deadline *mid-search*: the cell fails with
/// `DeadlineExceeded` after making measurable partial progress (candidate
/// evaluations ran before the cooperative deadline check tripped), unlike
/// the up-front expiry exercised by `Fault::ZeroDeadline`.
#[test]
fn slow_benchmark_exhausts_the_campaign_deadline_mid_search() {
    use mixp_core::Obs;
    // DDV narrows over eos's seven variables round by round, and every
    // round submits configurations it has never seen — so some later
    // round's admission check must observe the expired deadline (an
    // algorithm whose tail is all memo hits would never re-check it).
    // The threshold is tight enough that the all-lowered probe fails,
    // forcing the multi-round narrowing rather than instant success.
    let jobs = vec![Job::new("eos", "DDV", 1e-10, Scale::Small)];
    let obs = Obs::in_memory();
    let outcomes = run_campaign(
        &jobs,
        &CampaignOptions {
            workers: 1,
            deadline: Some(std::time::Duration::from_millis(100)),
            // Each execution burns 60ms. The deadline clock starts after the
            // reference run, so the integrity probe (~60ms) leaves room for
            // the first admission wave, but that wave's own sleep pushes the
            // clock past 100ms before the next wave asks — even though the
            // evaluator parallelises the executions *within* a wave.
            faults: FaultPlan::new().inject(0, Fault::SlowMs(60), u32::MAX),
            obs: obs.clone(),
            ..CampaignOptions::default()
        },
    );
    assert!(
        matches!(
            outcomes[0].outcome,
            Err(JobError::DeadlineExceeded { limit_ms: 100 })
        ),
        "{:?}",
        outcomes[0].outcome
    );
    // Partial progress: at least one whole candidate ran before the
    // deadline tripped (the counter excludes the reference run).
    let snap = obs.metrics_snapshot().unwrap();
    let runs = snap.counters.get("evaluator.runs").copied().unwrap_or(0);
    assert!(runs >= 1, "expected candidate evaluations before expiry");
}

/// Deadlines propagate from the campaign options into the evaluator: a
/// zero deadline times every cell out, a generous one lets them finish.
#[test]
fn campaign_deadline_is_enforced_per_job() {
    let jobs = jobs(&["tridiag", "eos"]);
    let strict = run_campaign(
        &jobs,
        &CampaignOptions {
            workers: 2,
            deadline: Some(std::time::Duration::ZERO),
            ..CampaignOptions::default()
        },
    );
    assert!(strict
        .iter()
        .all(|o| matches!(o.outcome, Err(JobError::DeadlineExceeded { .. }))));

    let generous = run_campaign(
        &jobs,
        &CampaignOptions {
            workers: 2,
            deadline: Some(std::time::Duration::from_secs(3600)),
            ..CampaignOptions::default()
        },
    );
    assert!(generous.iter().all(|o| o.outcome.is_ok()));
}

/// A cost model that prices every operation as NaN — the "model returns
/// garbage" failure mode — surfaces as a typed permanent failure. The
/// benchmark itself is healthy, so the integrity probe passes and the
/// search completes; only the speedups are non-finite, which the job
/// refuses to report as a result. Permanent: the retry policy must not
/// re-run a deterministic model defect.
#[test]
fn nan_cost_model_is_a_typed_permanent_failure() {
    let jobs = jobs(&["tridiag", "innerprod"]);
    let outcomes = run_campaign(
        &jobs,
        &CampaignOptions {
            workers: 2,
            retry: RetryPolicy::attempts(3),
            faults: FaultPlan::new().inject(0, Fault::CostModelNan, u32::MAX),
            ..CampaignOptions::default()
        },
    );
    assert!(
        matches!(outcomes[0].outcome, Err(JobError::NonFiniteQuality)),
        "{:?}",
        outcomes[0].outcome
    );
    assert_eq!(
        outcomes[0].attempts, 1,
        "a non-finite model verdict is permanent, not retried"
    );
    assert!(outcomes[1].outcome.is_ok(), "healthy sibling unaffected");

    let groups: Vec<Vec<_>> = outcomes.chunks(1).map(<[_]>::to_vec).collect();
    let table = render_grouped(&groups, &["DD"]);
    assert!(table.contains("FAILED(non-finite)"), "{table}");
}

/// The cache-simulator fault hook at the evaluator level: poisoned cache
/// statistics price every configuration at NaN, so records carry a NaN
/// speedup — but evaluation never panics and quality (which does not go
/// through the cost model) stays finite.
#[test]
fn poisoned_cache_stats_price_evaluations_as_nan_without_panicking() {
    use mixp_core::{CacheParams, EvaluatorBuilder, QualityThreshold};
    use mixp_harness::benchmark_by_name;

    let bench = benchmark_by_name("innerprod", Scale::Small).unwrap();
    let mut ev = EvaluatorBuilder::new(QualityThreshold::new(1e-3))
        .cache(CacheParams {
            poison_stats: true,
            ..CacheParams::default()
        })
        .build(bench.as_ref());
    let rec = ev
        .evaluate(&bench.program().config_all_single())
        .expect("poisoned pricing must not abort the evaluation");
    assert!(rec.speedup.is_nan(), "cost model must price as NaN");
    assert!(
        rec.quality.is_finite(),
        "quality bypasses the cost model and stays finite"
    );
}

/// Seeded fault plans drive a whole campaign deterministically: the same
/// seed yields the same set of failed cells on every run.
#[test]
fn seeded_fault_campaigns_are_reproducible() {
    let jobs = jobs(&["tridiag", "innerprod", "eos", "hydro-1d", "iccg", "planckian"]);
    let fates = |seed: u64| -> Vec<Option<&'static str>> {
        let opts = CampaignOptions {
            workers: 2,
            faults: FaultPlan::seeded(seed, jobs.len(), 50),
            ..CampaignOptions::default()
        };
        run_campaign(&jobs, &opts)
            .iter()
            .map(|o| o.outcome.as_ref().err().map(JobError::code))
            .collect()
    };
    assert_eq!(fates(7), fates(7), "same seed, same fates");
    assert!(
        fates(7).iter().any(Option::is_some),
        "50% fault rate over 6 jobs should fail something"
    );
}
