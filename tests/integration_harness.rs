//! Integration tests for the harness pipeline: YAML → config → job →
//! scheduler → report.

use mixp_harness::config::AnalysisConfig;
use mixp_harness::job::Job;
use mixp_harness::report::render_grouped;
use mixp_harness::{run_jobs, Scale};

/// A YAML configuration drives a complete analysis end-to-end, exactly as
/// the paper's `python harness.py config.yaml` flow does.
#[test]
fn yaml_config_drives_an_analysis() {
    let yaml = "
kmeans:
  build_dir: 'kmeans'
  build: [ 'make' ]
  clean: [ 'make clean' ]
  analysis:
    floatsmith:
      name: 'floatSmith'
      extra_args:
        algorithm: 'ddebug'
  metric: 'MCR'
  threshold: '1e-3'
  budget: '100'
  bin: 'kmeans'
  args: '-i kdd_bin -k 5 -n 5'
";
    let cfg = AnalysisConfig::from_yaml(yaml).expect("the Listing 4 shape parses");
    let mut job = Job::new(&cfg.benchmark, &cfg.algorithm, cfg.threshold, Scale::Small);
    if let Some(budget) = cfg.budget {
        job.budget = budget;
    }
    let result = job.execute(None, None).expect("kmeans analysis succeeds");
    assert_eq!(result.benchmark, "kmeans");
    assert_eq!(result.algorithm, "DD");
    assert!(!result.result.dnf);
    // K-means is insensitive to precision: DD lowers everything at once.
    let best = result.result.best.expect("kmeans passes at 1e-3");
    assert_eq!(best.quality, 0.0, "MCR of the separated clusters is zero");
}

/// The scheduler handles a heterogeneous batch and the report renders it.
#[test]
fn scheduler_and_report_round_trip() {
    let jobs: Vec<Job> = ["tridiag", "eos", "hydro-1d"]
        .iter()
        .flat_map(|b| {
            ["DD", "GA"]
                .iter()
                .map(|a| Job::new(b, a, 1e-3, Scale::Small))
        })
        .collect();
    let results = run_jobs(&jobs, 2);
    assert_eq!(results.len(), 6);
    assert!(results.iter().all(|o| o.outcome.is_ok()));
    let groups: Vec<Vec<_>> = results.chunks(2).map(<[_]>::to_vec).collect();
    let table = render_grouped(&groups, &["DD", "GA"]);
    assert!(table.contains("tridiag"));
    assert!(table.contains("SU:DD"));
    assert!(table.contains("Quality:GA"));
    // Every line of the rendered table has equal width.
    let lines: Vec<&str> = table.lines().collect();
    assert!(lines.iter().all(|l| l.len() == lines[0].len()));
}

/// Configuration files for every benchmark in the repository's `configs/`
/// directory parse and reference real benchmarks and algorithms.
#[test]
fn shipped_config_files_are_valid() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../configs");
    let entries = std::fs::read_dir(dir).expect("configs directory exists");
    let mut seen = 0;
    for entry in entries {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) != Some("yaml") {
            continue;
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let cfg = AnalysisConfig::from_yaml(&text)
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        assert!(
            mixp_harness::benchmark_by_name(&cfg.benchmark, Scale::Small).is_some(),
            "{}: unknown benchmark {}",
            path.display(),
            cfg.benchmark
        );
        assert!(
            mixp_search::algorithm_by_name(&cfg.algorithm).is_some(),
            "{}: unknown algorithm {}",
            path.display(),
            cfg.algorithm
        );
        seen += 1;
    }
    assert_eq!(seen, 17, "one config per benchmark");
}

/// Table II data exposed through the experiments module matches the
/// hard-coded expectations of the paper for every benchmark.
#[test]
fn experiments_table2_is_complete() {
    let rows = mixp_harness::experiments::table2();
    let expect: &[(&str, usize, usize)] = &[
        ("banded-lin-eq", 2, 1),
        ("diff-predictor", 5, 1),
        ("eos", 7, 2),
        ("gen-lin-recur", 4, 1),
        ("hydro-1d", 6, 2),
        ("iccg", 2, 1),
        ("innerprod", 3, 2),
        ("int-predict", 9, 2),
        ("planckian", 6, 2),
        ("tridiag", 3, 1),
        ("blackscholes", 59, 50),
        ("cfd", 195, 25),
        ("hotspot", 36, 22),
        ("hpccg", 54, 27),
        ("kmeans", 26, 15),
        ("lavamd", 47, 11),
        ("srad", 29, 14),
    ];
    assert_eq!(rows.len(), expect.len());
    for (row, (name, tv, tc)) in rows.iter().zip(expect) {
        assert_eq!(row.name, *name);
        assert_eq!(row.total_variables, *tv, "{name} TV");
        assert_eq!(row.total_clusters, *tc, "{name} TC");
    }
}
