//! Shape tests against the paper's evaluation (small scale, so they run in
//! CI time): who wins, what fails, where behaviour diverges as thresholds
//! tighten. Absolute numbers are checked loosely; orderings and
//! pass/fail/DNF structure are checked strictly.

use mixp_core::{run_config, Benchmark, CacheParams, CostModel, Evaluator, QualityThreshold};
use mixp_harness::experiments::{table4, TABLE5_THRESHOLDS};
use mixp_harness::{benchmark_by_name, Scale};
use mixp_search::{algorithm_by_name, DeltaDebug, Genetic, GeneticParams, SearchAlgorithm};

fn single_speedup(name: &str, scale: Scale) -> (f64, f64) {
    let b = benchmark_by_name(name, scale).unwrap();
    let model = CostModel::default();
    let cache = CacheParams::default();
    let (ref_out, rc, rs) = run_config(b.as_ref(), &b.program().config_all_double(), cache);
    let (out, c, s) = run_config(b.as_ref(), &b.program().config_all_single(), cache);
    (
        model.speedup((&rc, Some(&rs)), (&c, Some(&s))),
        b.metric().compare(&ref_out, &out),
    )
}

/// Table IV shapes: SRAD is destroyed, K-means is exactly preserved but not
/// faster, LavaMD has the largest error among the finite ones.
#[test]
fn table4_extreme_cases() {
    let rows = table4(Scale::Small);
    let get = |n: &str| rows.iter().find(|r| r.name == n).unwrap();
    assert!(get("srad").quality_loss.is_nan());
    assert_eq!(get("kmeans").quality_loss, 0.0);
    assert!(get("kmeans").speedup < 1.05);
    let finite_max = rows
        .iter()
        .filter(|r| r.quality_loss.is_finite())
        .max_by(|a, b| a.quality_loss.total_cmp(&b.quality_loss))
        .unwrap();
    assert_eq!(
        finite_max.name, "lavamd",
        "LavaMD accumulates the largest finite error"
    );
}

/// Paper-scale Table IV ordering: LavaMD gets the largest speedup (the
/// cache effect of §V), and kernels' banded-lin-eq beats every other
/// kernel. This is the one paper-scale test in the suite; it runs two
/// evaluations per benchmark involved.
#[test]
fn paper_scale_speedup_ordering() {
    let (lavamd, _) = single_speedup("lavamd", Scale::Paper);
    let (hotspot, _) = single_speedup("hotspot", Scale::Paper);
    let (kmeans, _) = single_speedup("kmeans", Scale::Paper);
    assert!(
        lavamd > hotspot && hotspot > kmeans,
        "lavamd {lavamd} > hotspot {hotspot} > kmeans {kmeans}"
    );
    let (banded, _) = single_speedup("banded-lin-eq", Scale::Paper);
    for k in ["eos", "planckian", "tridiag", "iccg", "hydro-1d"] {
        let (s, _) = single_speedup(k, Scale::Paper);
        assert!(banded > s + 0.5, "banded {banded} should dwarf {k} {s}");
    }
}

/// DD evaluates more configurations as the threshold tightens, while GA's
/// evaluation count is bounded by its generation budget at every
/// threshold — the Figure 2a contrast.
#[test]
fn figure2a_dd_grows_ga_stays_bounded() {
    let params = GeneticParams::default();
    let ga_cap = params.population * params.max_generations;
    let mut dd_counts = Vec::new();
    for t in TABLE5_THRESHOLDS {
        let bench = benchmark_by_name("cfd", Scale::Small).unwrap();
        let mut ev = Evaluator::new(bench.as_ref(), QualityThreshold::new(t));
        let dd = DeltaDebug::new().search(&mut ev);
        dd_counts.push(dd.evaluated);

        let bench = benchmark_by_name("cfd", Scale::Small).unwrap();
        let mut ev = Evaluator::new(bench.as_ref(), QualityThreshold::new(t));
        let ga = Genetic::new(params).search(&mut ev);
        assert!(ga.evaluated <= ga_cap, "GA bounded at {t:e}");
    }
    assert!(
        dd_counts[2] >= dd_counts[0],
        "DD at 1e-8 ({}) must not need fewer configs than at 1e-3 ({})",
        dd_counts[2],
        dd_counts[0]
    );
}

/// The delta-debugging result is never slower than the genetic result by
/// more than noise — "DD typically results in configurations providing the
/// most speedup" (§V) — checked across several benchmarks.
#[test]
fn dd_at_least_matches_ga() {
    for name in ["hydro-1d", "iccg", "banded-lin-eq", "cfd"] {
        let bench = benchmark_by_name(name, Scale::Small).unwrap();
        let mut ev = Evaluator::new(bench.as_ref(), QualityThreshold::new(1e-3));
        let dd = DeltaDebug::new().search(&mut ev);
        let bench = benchmark_by_name(name, Scale::Small).unwrap();
        let mut ev = Evaluator::new(bench.as_ref(), QualityThreshold::new(1e-3));
        let ga = Genetic::new(GeneticParams::default()).search(&mut ev);
        if let (Some(d), Some(g)) = (dd.speedup(), ga.speedup()) {
            assert!(d >= g * 0.95, "{name}: DD {d} vs GA {g}");
        }
    }
}

/// Hierarchical search wastes evaluations on configurations that do not
/// compile once it descends to the variable level — §V's core criticism.
#[test]
fn hierarchical_wastes_budget_on_invalid_configs() {
    // At an impossible threshold HR descends all the way down on an
    // application whose clusters span functions.
    let bench = benchmark_by_name("hpccg", Scale::Small).unwrap();
    let hr = algorithm_by_name("HR").unwrap();
    let mut ev = Evaluator::new(bench.as_ref(), QualityThreshold::new(0.0));
    let result = hr.search(&mut ev);
    // HR descends to the variable level: at least one evaluation per
    // tunable variable, almost all of which split a CG cluster and cannot
    // even compile — and none of which can pass.
    let tv = bench.program().total_variables();
    assert!(
        result.evaluated > tv,
        "HR evaluated {} ≤ TV {}",
        result.evaluated,
        tv
    );
    // At a zero threshold only no-op or exactly-representable clusters can
    // pass — never a configuration touching the solver arithmetic.
    if let Some(best) = result.best {
        assert_eq!(best.quality, 0.0);
    }
}

/// The compositional closure explodes on cluster-rich applications and
/// hits the budget (the paper's grey DNF boxes), while DD and GA finish.
#[test]
fn cm_explodes_where_dd_and_ga_finish() {
    use mixp_core::EvaluatorBuilder;
    let budget = 60;
    let mut outcomes = Vec::new();
    for algo_name in ["CM", "DD", "GA"] {
        let bench = benchmark_by_name("kmeans", Scale::Small).unwrap();
        let algo = algorithm_by_name(algo_name).unwrap();
        let mut ev = EvaluatorBuilder::new(QualityThreshold::new(1e-3))
            .budget(budget)
            .build(bench.as_ref());
        outcomes.push((algo_name, algo.search(&mut ev).dnf));
    }
    assert_eq!(outcomes[0], ("CM", true), "CM must exhaust the budget");
    assert_eq!(outcomes[1], ("DD", false));
    assert_eq!(outcomes[2], ("GA", false));
}

/// Quality values reported by searches are never above their threshold:
/// "the analysis will always respect the quality constraint" (§IV).
#[test]
fn reported_quality_respects_threshold() {
    for name in ["blackscholes", "srad", "hotspot"] {
        for t in TABLE5_THRESHOLDS {
            let bench: Box<dyn Benchmark> = benchmark_by_name(name, Scale::Small).unwrap();
            let mut ev = Evaluator::new(bench.as_ref(), QualityThreshold::new(t));
            let r = DeltaDebug::new().search(&mut ev);
            if let Some(q) = r.quality() {
                assert!(q <= t, "{name}@{t:e}: quality {q}");
            }
        }
    }
}
