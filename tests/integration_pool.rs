//! Integration tests for the unified work-stealing pool: a campaign with
//! parallel jobs *and* parallel evaluator batches inside them must stay
//! bit-identical to the sequential run, keep total pool threads bounded by
//! the single `workers` knob (no more W×W oversubscription), and thread
//! its evaluator spans under the campaign's per-job spans.

use mixp_core::{EvaluatorBuilder, Granularity, Obs, PrecisionConfig, QualityThreshold, SearchSpace};
use mixp_harness::scheduler::{run_campaign, CampaignOptions};
use mixp_harness::{benchmark_by_name, Job, Scale};

fn jobs() -> Vec<Job> {
    vec![
        Job::new("tridiag", "DD", 1e-3, Scale::Small),
        Job::new("eos", "CB", 1e-3, Scale::Small),
        Job::new("innerprod", "DD", 1e-3, Scale::Small),
    ]
}

fn opts(workers: usize, eval_workers: usize, obs: Obs) -> CampaignOptions {
    CampaignOptions {
        workers,
        eval_workers,
        obs,
        ..CampaignOptions::default()
    }
}

/// The acceptance property of the pool work: nesting parallel evaluator
/// batches (eval_workers > 1) inside a parallel campaign must not change a
/// single bit of any outcome, for every campaign width.
#[test]
fn nested_campaign_is_bit_identical_across_worker_counts() {
    let jobs = jobs();
    let baseline = run_campaign(&jobs, &opts(1, 4, Obs::noop()));
    for workers in [2, 4, 7] {
        let outcomes = run_campaign(&jobs, &opts(workers, 4, Obs::noop()));
        assert_eq!(baseline.len(), outcomes.len());
        for (b, o) in baseline.iter().zip(&outcomes) {
            let (b, o) = (
                b.result().expect("baseline job succeeds"),
                o.result().expect("parallel job succeeds"),
            );
            assert_eq!(b.result.evaluated, o.result.evaluated, "workers={workers}");
            assert_eq!(b.result.dnf, o.result.dnf, "workers={workers}");
            match (&b.result.best, &o.result.best) {
                (None, None) => {}
                (Some(bb), Some(ob)) => {
                    assert_eq!(bb.config.key(), ob.config.key(), "workers={workers}");
                    assert_eq!(
                        bb.quality.to_bits(),
                        ob.quality.to_bits(),
                        "workers={workers}"
                    );
                    assert_eq!(
                        bb.speedup.to_bits(),
                        ob.speedup.to_bits(),
                        "workers={workers}"
                    );
                }
                other => panic!("best diverges at workers={workers}: {other:?}"),
            }
        }
    }
}

/// The oversubscription fix itself, gauge-verified: a nested campaign
/// (4 campaign workers × 4 evaluator workers) creates exactly one pool and
/// never holds more than `workers` threads — 3 spawned plus the caller —
/// where the old nested `thread::scope` layers ran up to 16.
#[test]
fn nested_campaign_holds_the_configured_thread_bound() {
    let obs = Obs::in_memory();
    let outcomes = run_campaign(&jobs(), &opts(4, 4, obs.clone()));
    assert!(outcomes.iter().all(|o| o.outcome.is_ok()));
    let snap = obs.metrics_snapshot().expect("in-memory obs has metrics");
    assert_eq!(
        snap.counters["pool.created"], 1,
        "nested evaluators must join the campaign pool, not build their own"
    );
    assert!(
        snap.gauges["pool.peak_threads"] <= 3.0,
        "4 workers = caller + at most 3 pool threads, got {}",
        snap.gauges["pool.peak_threads"]
    );
    assert_eq!(
        snap.gauges["pool.live_threads"], 0.0,
        "pool threads are joined when the campaign ends"
    );
}

/// A standalone evaluator (no enclosing campaign) lazily builds one
/// private pool on its first parallel batch and reuses it for every batch
/// after — no per-batch spawn cost, no extra pools.
#[test]
fn standalone_evaluator_reuses_one_private_pool() {
    let obs = Obs::in_memory();
    let bench = benchmark_by_name("blackscholes", Scale::Small).expect("blackscholes exists");
    let mut ev = EvaluatorBuilder::new(QualityThreshold::new(1e-3))
        .budget(1000)
        .workers(4)
        .obs(obs.clone())
        .build(bench.as_ref());
    // Whole-cluster configurations always compile, so every one reaches
    // the parallel run phase instead of being resolved during validation.
    let space = SearchSpace::new(bench.program(), Granularity::Clusters);
    let cfgs: Vec<PrecisionConfig> = (0..space.len().min(8))
        .map(|u| {
            let mut mask = vec![false; space.len()];
            mask[u] = true;
            space.config_from_mask(bench.program(), &mask)
        })
        .collect();
    assert!(cfgs.len() >= 4, "blackscholes has many clusters");
    for chunk in cfgs.chunks(2) {
        for r in ev.evaluate_batch(chunk) {
            r.expect("budgeted batch evaluation succeeds");
        }
    }
    drop(ev);
    let snap = obs.metrics_snapshot().expect("in-memory obs has metrics");
    assert_eq!(
        snap.counters["pool.created"], 1,
        "all batches share one lazily-created pool"
    );
    assert!(snap.counters["pool.batches"] >= 2);
    assert!(snap.gauges["pool.peak_threads"] <= 3.0);
    assert_eq!(
        snap.gauges["pool.live_threads"], 0.0,
        "the private pool is joined when the evaluator drops"
    );
}

fn field_u64(line: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\":");
    let at = line.find(&needle)? + needle.len();
    let digits: String = line[at..].chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

/// Evaluator spans opened inside a campaign carry the campaign's per-job
/// span id as their `parent`, so a trace viewer can hang every evaluation
/// under the cell that ran it even when jobs interleave across workers.
#[test]
fn evaluator_spans_nest_under_campaign_job_spans() {
    let obs = Obs::in_memory();
    let outcomes = run_campaign(&jobs(), &opts(2, 2, obs.clone()));
    assert!(outcomes.iter().all(|o| o.outcome.is_ok()));
    let lines = obs.trace_lines();
    let job_ids: Vec<u64> = lines
        .iter()
        .filter(|l| l.contains("\"t\":\"span\"") && l.contains("\"name\":\"job\""))
        .map(|l| field_u64(l, "id").expect("span starts carry an id"))
        .collect();
    assert_eq!(job_ids.len(), 3, "one job span per cell");
    let eval_parents: Vec<u64> = lines
        .iter()
        .filter(|l| {
            l.contains("\"t\":\"span\"")
                && (l.contains("\"name\":\"eval\"") || l.contains("\"name\":\"eval.batch\""))
        })
        .map(|l| field_u64(l, "parent").expect("evaluator spans are parented"))
        .collect();
    assert!(!eval_parents.is_empty(), "the jobs evaluated something");
    for parent in eval_parents {
        assert!(
            job_ids.contains(&parent),
            "eval span parent {parent} is not a job span id {job_ids:?}"
        );
    }
}
