//! Generative property tests: random synthetic tunable programs are thrown
//! at every search algorithm, and the core invariants must hold for all of
//! them — not just for the 17 shipped benchmarks.

use mixp_core::prop::{bools, u64s, usizes, vecs};
use mixp_core::synth::SplitMix64;
use mixp_core::{
    prop_assert, prop_assert_eq, prop_check, Benchmark, BenchmarkKind, Evaluator,
    EvaluatorBuilder, ExecCtx, MetricKind, PrecisionConfig, ProgramBuilder, ProgramModel,
    QualityThreshold, VarId,
};
use mixp_float::{MpScalar, MpVec};
use mixp_search::all_algorithms;

/// A randomly-shaped but deterministic benchmark: `nvars` variables split
/// over two functions, random dependence edges, and a computation in which
/// every variable participates (arrays via element updates, scalars as
/// coefficients).
#[derive(Debug)]
struct RandomBench {
    program: ProgramModel,
    arrays: Vec<VarId>,
    scalars: Vec<VarId>,
    n: usize,
    seed: u64,
}

impl RandomBench {
    fn new(nvars: usize, edges: &[(usize, usize)], seed: u64) -> Self {
        let mut b = ProgramBuilder::new("random-bench");
        let m = b.module("random.c");
        let f1 = b.function("phase1", m);
        let f2 = b.function("phase2", m);
        let mut arrays = Vec::new();
        let mut scalars = Vec::new();
        let mut ids = Vec::new();
        for i in 0..nvars {
            let f = if i % 2 == 0 { f1 } else { f2 };
            let id = if i % 3 == 0 {
                let id = b.array(f, &format!("arr{i}"));
                arrays.push(id);
                id
            } else {
                let id = b.scalar(f, &format!("s{i}"));
                scalars.push(id);
                id
            };
            ids.push(id);
        }
        if arrays.is_empty() {
            let id = b.array(f1, "arr_last");
            arrays.push(id);
            ids.push(id);
        }
        for &(a, e) in edges {
            b.bind(ids[a % ids.len()], ids[e % ids.len()]);
        }
        let program = b.build();
        RandomBench {
            program,
            arrays,
            scalars,
            n: 48,
            seed,
        }
    }
}

impl Benchmark for RandomBench {
    fn name(&self) -> &str {
        "random-bench"
    }
    fn description(&self) -> &str {
        "generated property-test program"
    }
    fn kind(&self) -> BenchmarkKind {
        BenchmarkKind::Kernel
    }
    fn program(&self) -> &ProgramModel {
        &self.program
    }
    fn metric(&self) -> MetricKind {
        MetricKind::Rmse
    }
    fn run(&self, ctx: &mut ExecCtx<'_>) -> Vec<f64> {
        let mut rng = SplitMix64::new(self.seed);
        let scalars: Vec<MpScalar> = self
            .scalars
            .iter()
            .map(|&v| MpScalar::new(ctx, v, rng.uniform(0.01, 0.2)))
            .collect();
        let mut arrays: Vec<MpVec> = self
            .arrays
            .iter()
            .map(|&v| {
                let init: Vec<f64> = (0..self.n).map(|_| rng.uniform(0.01, 0.11)).collect();
                MpVec::from_values(ctx, v, &init)
            })
            .collect();
        // Every array is updated from its predecessor with every scalar
        // contributing as a coefficient somewhere.
        for pass in 0..2 {
            for ai in 0..arrays.len() {
                let src = if ai == 0 { arrays.len() - 1 } else { ai - 1 };
                for i in 1..self.n {
                    let coeff = if scalars.is_empty() {
                        0.125
                    } else {
                        scalars[(ai + i + pass) % scalars.len()].get()
                    };
                    let v = arrays[src].get(ctx, i - 1) * coeff + arrays[ai].get(ctx, i) * 0.5;
                    let srcs: Vec<VarId> = if scalars.is_empty() {
                        vec![self.arrays[src]]
                    } else {
                        vec![
                            self.arrays[src],
                            self.scalars[(ai + i + pass) % self.scalars.len()],
                        ]
                    };
                    ctx.flop(self.arrays[ai], &srcs, 3);
                    arrays[ai].set(ctx, i, v);
                }
            }
        }
        arrays.iter().flat_map(MpVec::snapshot).collect()
    }
}

/// On arbitrary programs, every algorithm terminates, and whatever it
/// reports as best (a) compiles, (b) is not the identity, (c) meets the
/// threshold, and (d) reproduces its metrics when re-evaluated.
#[test]
fn all_algorithms_uphold_invariants_on_random_programs() {
    prop_check!((
        nvars in usizes(2..9),
        edges in vecs((usizes(0..9), usizes(0..9)), 0..6),
        seed in u64s(0..1000),
    ) => {
        let bench = RandomBench::new(nvars, &edges, seed);
        let threshold = 1e-5;
        for algo in all_algorithms() {
            let mut ev = Evaluator::new(&bench, QualityThreshold::new(threshold));
            let result = algo.search(&mut ev);
            prop_assert!(!result.dnf, "{} must terminate", algo.name());
            if let Some(best) = &result.best {
                prop_assert!(best.compiled, "{}: best must compile", algo.name());
                prop_assert!(
                    bench.program.validate(&best.config).is_ok(),
                    "{}: best must validate",
                    algo.name()
                );
                prop_assert!(!best.config.is_all_double());
                prop_assert!(best.quality <= threshold);
                let mut ev2 = Evaluator::new(&bench, QualityThreshold::new(threshold));
                let re = ev2.evaluate(&best.config).unwrap();
                prop_assert_eq!(re.quality, best.quality);
                prop_assert_eq!(re.speedup, best.speedup);
            }
        }
    });
}

/// Cluster counts never exceed variable counts, and expanding any
/// cluster subset of a random program yields a valid configuration.
#[test]
fn random_programs_have_sound_clusterings() {
    prop_check!((
        nvars in usizes(2..12),
        edges in vecs((usizes(0..12), usizes(0..12)), 0..10),
        mask in vecs(bools(), 12..13),
    ) => {
        let bench = RandomBench::new(nvars, &edges, 7);
        let pm = bench.program();
        prop_assert!(pm.total_clusters() <= pm.total_variables());
        prop_assert!(pm.total_clusters() >= 1);
        let lowered: Vec<_> = pm
            .clustering()
            .ids()
            .filter(|c| mask[c.index() % mask.len()])
            .collect();
        let cfg = pm.config_from_clusters(lowered);
        prop_assert!(pm.validate(&cfg).is_ok());
    });
}

/// Batch evaluation is bit-identical to the sequential path for *any*
/// worker count, batch shape, and budget: same per-configuration records
/// (including duplicates and non-compiling cluster-splitting configs), same
/// budget accounting, same stop reason, same best configuration. This is
/// the submission-order determinism contract of `evaluate_batch`.
#[test]
fn evaluate_batch_is_bit_identical_to_sequential() {
    prop_check!((
        nvars in usizes(2..9),
        edges in vecs((usizes(0..9), usizes(0..9)), 0..6),
        mix in u64s(0..55_000),
        masks in vecs(usizes(0..64), 1..10),
    ) => {
        // One u64 packs the remaining dimensions (the prop harness caps
        // tuple arity at 4): benchmark seed, worker count, and budget.
        let seed = mix % 1000;
        let workers = 2 + ((mix / 1000) % 5) as usize;
        let budget = 1 + ((mix / 5000) % 11) as usize;
        let bench = RandomBench::new(nvars, &edges, seed);
        let pm = bench.program().clone();
        // Random variable subsets: some split clusters (don't compile),
        // some repeat — both must behave identically in either path.
        let cfgs: Vec<PrecisionConfig> = masks
            .iter()
            .map(|&mask| {
                let lowered = pm
                    .tunable_vars()
                    .into_iter()
                    .filter(|v| (mask >> (v.index() % 6)) & 1 == 1);
                PrecisionConfig::from_lowered(pm.var_count(), lowered)
            })
            .collect();

        let mut seq = EvaluatorBuilder::new(QualityThreshold::new(1e-5))
            .budget(budget)
            .workers(1)
            .build(&bench);
        let seq_results: Vec<_> = cfgs.iter().map(|c| seq.evaluate(c)).collect();

        let mut batch = EvaluatorBuilder::new(QualityThreshold::new(1e-5))
            .budget(budget)
            .workers(workers)
            .build(&bench);
        let batch_results = batch.evaluate_batch(&cfgs);

        prop_assert_eq!(seq_results.len(), batch_results.len());
        for (s, b) in seq_results.iter().zip(&batch_results) {
            match (s, b) {
                (Ok(sr), Ok(br)) => {
                    prop_assert_eq!(sr.compiled, br.compiled);
                    prop_assert_eq!(sr.passes, br.passes);
                    prop_assert_eq!(sr.quality.to_bits(), br.quality.to_bits());
                    prop_assert_eq!(sr.speedup.to_bits(), br.speedup.to_bits());
                    prop_assert_eq!(sr.config.key(), br.config.key());
                }
                (Err(se), Err(be)) => prop_assert_eq!(se, be),
                other => prop_assert!(false, "paths diverge: {:?}", other),
            }
        }
        prop_assert_eq!(seq.evaluated(), batch.evaluated());
        prop_assert_eq!(seq.stop_reason(), batch.stop_reason());
        match (seq.best(), batch.best()) {
            (None, None) => {}
            (Some(sb), Some(bb)) => {
                prop_assert_eq!(sb.config.key(), bb.config.key());
                prop_assert_eq!(sb.speedup.to_bits(), bb.speedup.to_bits());
            }
            other => prop_assert!(false, "best diverges: {:?}", other),
        }
    });
}

/// Every shipped benchmark must produce bit-identical output values and op
/// counts with and without a tracer attached, for arbitrary precision
/// configurations: the untraced fast paths introduced by the bulk `MpVec`
/// layer can never drift from the traced reference loops. (The traced
/// access *streams* themselves are pinned separately: each bulk primitive
/// is checked against its canonical element-wise loop in `mixp_float`'s
/// unit tests, and the benchmarks' cache-fed speedup assertions would move
/// if a stream changed.)
#[test]
fn traced_and_untraced_benchmark_runs_are_bit_identical() {
    struct Fingerprint {
        hash: u64,
        accesses: u64,
    }
    impl mixp_float::MemoryTracer for Fingerprint {
        fn access(&mut self, addr: u64, bytes: u8, write: bool) {
            self.hash = self
                .hash
                .wrapping_mul(0x0000_0100_0000_01b3)
                ^ addr
                ^ (u64::from(bytes) << 48)
                ^ (u64::from(write) << 63);
            self.accesses += 1;
        }
    }
    prop_check!((pick in usizes(0..17), seed in u64s(0..1_000_000)) => {
        let bench: Box<dyn Benchmark> = {
            let mut all = mixp_kernels::all_kernels_small();
            all.extend(mixp_apps::all_applications_small());
            all.swap_remove(pick % all.len())
        };
        let pm = bench.program();
        let mut cfg = pm.config_all_double();
        let mut rng = SplitMix64::new(seed.wrapping_mul(2).wrapping_add(1));
        for v in pm.tunable_vars() {
            match rng.next_range(4) {
                0 | 1 => {}
                2 => cfg.set(v, mixp_float::Precision::Single),
                _ => cfg.set(v, mixp_float::Precision::Half),
            }
        }

        let mut tracer = Fingerprint { hash: 0xcbf2_9ce4_8422_2325, accesses: 0 };
        let (traced_out, traced_counts) = {
            let mut ctx = ExecCtx::with_tracer(&cfg, &mut tracer);
            let out = bench.run(&mut ctx);
            (out, ctx.counts())
        };
        let (plain_out, plain_counts) = {
            let mut ctx = ExecCtx::new(&cfg);
            let out = bench.run(&mut ctx);
            (out, ctx.counts())
        };

        prop_assert_eq!(traced_out.len(), plain_out.len());
        for (t, p) in traced_out.iter().zip(&plain_out) {
            prop_assert_eq!(t.to_bits(), p.to_bits(), "{} values diverge", bench.name());
        }
        prop_assert_eq!(traced_counts, plain_counts, "{} counts diverge", bench.name());
        prop_assert!(
            tracer.accesses >= traced_counts.total_mem_ops(),
            "{}: tracer saw fewer accesses than were counted",
            bench.name()
        );
    });
}

/// The cache simulators' grouped fast paths must be *bit-identical* to the
/// default element-wise replay on the real access streams of every shipped
/// benchmark, under arbitrary precision configurations. `ScalarReplay`
/// forwards only `access`, so the wrapped simulator is driven through
/// `MemoryTracer::access_group`'s default per-element loop — the legacy
/// path — while the bare simulator takes the memoized group path.
#[test]
fn traced_group_is_bit_identical_to_elementwise() {
    use mixp_core::perf::{CacheParams, CacheSim, Hierarchy};

    struct ScalarReplay<T>(T);
    impl<T: mixp_float::MemoryTracer> mixp_float::MemoryTracer for ScalarReplay<T> {
        fn access(&mut self, addr: u64, bytes: u8, write: bool) {
            self.0.access(addr, bytes, write);
        }
    }

    prop_check!((pick in usizes(0..17), seed in u64s(0..1_000_000), two_level in bools()) => {
        let bench: Box<dyn Benchmark> = {
            let mut all = mixp_kernels::all_kernels_small();
            all.extend(mixp_apps::all_applications_small());
            all.swap_remove(pick % all.len())
        };
        let pm = bench.program();
        let mut cfg = pm.config_all_double();
        let mut rng = SplitMix64::new(seed.wrapping_mul(2).wrapping_add(1));
        for v in pm.tunable_vars() {
            match rng.next_range(4) {
                0 | 1 => {}
                2 => cfg.set(v, mixp_float::Precision::Single),
                _ => cfg.set(v, mixp_float::Precision::Half),
            }
        }

        let params = CacheParams::default();
        if two_level {
            let mut fast = Hierarchy::new(params);
            {
                let mut ctx = ExecCtx::with_tracer(&cfg, &mut fast);
                bench.run(&mut ctx);
            }
            let mut slow = ScalarReplay(Hierarchy::new(params));
            {
                let mut ctx = ExecCtx::with_tracer(&cfg, &mut slow);
                bench.run(&mut ctx);
            }
            prop_assert_eq!(
                fast.stats(),
                slow.0.stats(),
                "{}: hierarchy stats diverge between group and element-wise paths",
                bench.name()
            );
        } else {
            let mut fast = CacheSim::new(params.l1);
            {
                let mut ctx = ExecCtx::with_tracer(&cfg, &mut fast);
                bench.run(&mut ctx);
            }
            let mut slow = ScalarReplay(CacheSim::new(params.l1));
            {
                let mut ctx = ExecCtx::with_tracer(&cfg, &mut slow);
                bench.run(&mut ctx);
            }
            prop_assert_eq!(
                (fast.hits(), fast.misses(), fast.writebacks()),
                (slow.0.hits(), slow.0.misses(), slow.0.writebacks()),
                "{}: L1 stats diverge between group and element-wise paths",
                bench.name()
            );
        }
    });
}

/// Observability is strictly passive: an arbitrary campaign (random
/// benchmark subset, algorithm rotation, worker count) produces
/// bit-identical outcomes — qualities, speedups, evaluation counts, cache
/// statistics, failure codes — whether it runs under the default noop
/// handle or with full in-memory tracing and metrics enabled. This is the
/// contract that lets `--trace`/`--metrics` be switched on in production
/// campaigns without invalidating any reported number.
#[test]
fn obs_noop_is_bit_identical() {
    use mixp_core::Obs;
    use mixp_harness::{run_campaign_with_stats, CampaignOptions, Job, Scale};
    let names = mixp_harness::benchmark_names();
    let algos = ["CB", "CB3", "CM", "DD", "DDV", "GA", "HC", "HR", "HR+"];
    prop_check!((
        picks in vecs(usizes(0..17), 1..4),
        algo_pick in usizes(0..9),
        workers in usizes(1..4),
    ) => {
        let jobs: Vec<Job> = picks
            .iter()
            .enumerate()
            .map(|(i, &p)| {
                Job::new(
                    names[p % names.len()],
                    algos[(algo_pick + i) % algos.len()],
                    1e-3,
                    Scale::Small,
                )
            })
            .collect();
        let opts = |obs: Obs| CampaignOptions {
            workers,
            obs,
            ..CampaignOptions::default()
        };
        let (plain, plain_stats) = run_campaign_with_stats(&jobs, &opts(Obs::noop()));
        let obs = Obs::in_memory();
        let (traced, traced_stats) = run_campaign_with_stats(&jobs, &opts(obs.clone()));

        prop_assert!(
            !obs.trace_lines().is_empty(),
            "the traced run must actually record something"
        );
        // Total lookups are deterministic (each job's search path depends
        // only on evaluation results, which are bit-identical), but the
        // hit/miss *split* is not: two workers evaluating the same config
        // concurrently race the lookup→insert window and may both miss.
        // Sharing is documented as a pure wall-clock optimisation, so only
        // the total is part of the contract.
        prop_assert_eq!(
            plain_stats.shared_cache_hits + plain_stats.shared_cache_misses,
            traced_stats.shared_cache_hits + traced_stats.shared_cache_misses
        );
        prop_assert_eq!(plain.len(), traced.len());
        for (p, t) in plain.iter().zip(&traced) {
            prop_assert_eq!(p.attempts, t.attempts);
            match (&p.outcome, &t.outcome) {
                (Ok(pr), Ok(tr)) => {
                    prop_assert_eq!(pr.result.evaluated, tr.result.evaluated);
                    prop_assert_eq!(pr.result.dnf, tr.result.dnf);
                    match (&pr.result.best, &tr.result.best) {
                        (None, None) => {}
                        (Some(pb), Some(tb)) => {
                            prop_assert_eq!(pb.config.key(), tb.config.key());
                            prop_assert_eq!(pb.quality.to_bits(), tb.quality.to_bits());
                            prop_assert_eq!(pb.speedup.to_bits(), tb.speedup.to_bits());
                        }
                        other => prop_assert!(false, "best diverges: {:?}", other),
                    }
                }
                (Err(pe), Err(te)) => prop_assert_eq!(pe, te),
                other => prop_assert!(false, "outcomes diverge: {:?}", other),
            }
        }
    });
}

/// Every IR-ported kernel's config-specialized execution plan is
/// bit-identical to the hand-written `run` it was compiled from, for
/// arbitrary mixed-precision configurations: same output bits, same
/// operation counts, same cache statistics. Both arms are exercised —
/// the full `run_config` pipeline (hierarchy-traced) and bare untraced
/// contexts around `compile_plan`/`run_plan`.
#[test]
fn ir_plans_are_bit_identical_to_handwritten_kernels() {
    prop_check!((pick in usizes(0..10), seed in u64s(0..1_000_000), traced in bools()) => {
        let bench: Box<dyn Benchmark> = {
            let mut all = mixp_kernels::all_kernels_small();
            all.swap_remove(pick % all.len())
        };
        let prog = bench.ir_program().expect("all ten kernels are IR-ported");
        let pm = bench.program();
        let mut cfg = pm.config_all_double();
        let mut rng = SplitMix64::new(seed.wrapping_mul(2).wrapping_add(1));
        for v in pm.tunable_vars() {
            match rng.next_range(4) {
                0 | 1 => {}
                2 => cfg.set(v, mixp_float::Precision::Single),
                _ => cfg.set(v, mixp_float::Precision::Half),
            }
        }

        if traced {
            let params = mixp_core::CacheParams::default();
            let (d_out, d_counts, d_stats) =
                mixp_core::run_config_direct(bench.as_ref(), &cfg, params);
            let (p_out, p_counts, p_stats) = mixp_core::run_config(bench.as_ref(), &cfg, params);
            prop_assert_eq!(d_out.len(), p_out.len());
            for (d, p) in d_out.iter().zip(&p_out) {
                prop_assert_eq!(d.to_bits(), p.to_bits(), "{} outputs diverge", bench.name());
            }
            prop_assert_eq!(d_counts, p_counts, "{} op counts diverge", bench.name());
            prop_assert_eq!(d_stats, p_stats, "{} cache stats diverge", bench.name());
        } else {
            let plan = mixp_core::compile_plan(prog, &cfg);
            let (d_out, d_counts) = {
                let mut ctx = ExecCtx::new(&cfg);
                (bench.run(&mut ctx), ctx.counts())
            };
            let (p_out, p_counts) = {
                let mut ctx = ExecCtx::new(&cfg);
                (mixp_core::run_plan(&plan, &mut ctx), ctx.counts())
            };
            prop_assert_eq!(d_out.len(), p_out.len());
            for (d, p) in d_out.iter().zip(&p_out) {
                prop_assert_eq!(d.to_bits(), p.to_bits(), "{} outputs diverge", bench.name());
            }
            prop_assert_eq!(d_counts, p_counts, "{} op counts diverge", bench.name());
        }
    });
}

/// The first IR-ported *application* (hotspot) satisfies the same
/// bit-identity contract as the 10 kernels: its unrolled stencil IR —
/// per-iteration charges, three row segments with boundary streams, the
/// `tc`/`delta` scratch-scalar roundings (`LetScal`), and the grid
/// ping-pong — reproduces the hand-written `run` exactly for arbitrary
/// mixed configurations, on both the traced and untraced arms.
#[test]
fn ir_plan_is_bit_identical_to_handwritten_hotspot() {
    prop_check!((seed in u64s(0..1_000_000), traced in bools()) => {
        let bench = mixp_apps::Hotspot::small();
        let prog = bench.ir_program().expect("hotspot is IR-ported");
        let pm = bench.program();
        let mut cfg = pm.config_all_double();
        let mut rng = SplitMix64::new(seed.wrapping_mul(2).wrapping_add(1));
        for v in pm.tunable_vars() {
            match rng.next_range(4) {
                0 | 1 => {}
                2 => cfg.set(v, mixp_float::Precision::Single),
                _ => cfg.set(v, mixp_float::Precision::Half),
            }
        }

        if traced {
            let params = mixp_core::CacheParams::default();
            let (d_out, d_counts, d_stats) = mixp_core::run_config_direct(&bench, &cfg, params);
            let (p_out, p_counts, p_stats) = mixp_core::run_config(&bench, &cfg, params);
            prop_assert_eq!(d_out.len(), p_out.len());
            for (d, p) in d_out.iter().zip(&p_out) {
                prop_assert_eq!(d.to_bits(), p.to_bits(), "hotspot outputs diverge");
            }
            prop_assert_eq!(d_counts, p_counts, "hotspot op counts diverge");
            prop_assert_eq!(d_stats, p_stats, "hotspot cache stats diverge");
        } else {
            let plan = mixp_core::compile_plan(prog, &cfg);
            let (d_out, d_counts) = {
                let mut ctx = ExecCtx::new(&cfg);
                (bench.run(&mut ctx), ctx.counts())
            };
            let (p_out, p_counts) = {
                let mut ctx = ExecCtx::new(&cfg);
                (mixp_core::run_plan(&plan, &mut ctx), ctx.counts())
            };
            prop_assert_eq!(d_out.len(), p_out.len());
            for (d, p) in d_out.iter().zip(&p_out) {
                prop_assert_eq!(d.to_bits(), p.to_bits(), "hotspot outputs diverge");
            }
            prop_assert_eq!(d_counts, p_counts, "hotspot op counts diverge");
        }
    });
}

/// The evaluator's plan path (shared `PlanCache`, any worker count, batch
/// or sequential submission) reports the same records as an evaluator
/// forced onto the hand-written path — including non-compiling
/// cluster-splitting configurations and the all-double reference run.
#[test]
fn evaluator_plan_path_matches_direct_for_kernels() {
    /// Forwards a benchmark but hides its IR port, pinning the evaluator
    /// to the hand-written `run` path.
    struct DirectOnly<'a>(&'a dyn Benchmark);
    impl Benchmark for DirectOnly<'_> {
        fn name(&self) -> &str {
            self.0.name()
        }
        fn description(&self) -> &str {
            self.0.description()
        }
        fn kind(&self) -> BenchmarkKind {
            self.0.kind()
        }
        fn program(&self) -> &ProgramModel {
            self.0.program()
        }
        fn metric(&self) -> MetricKind {
            self.0.metric()
        }
        fn run(&self, ctx: &mut ExecCtx<'_>) -> Vec<f64> {
            self.0.run(ctx)
        }
    }

    prop_check!((
        pick in usizes(0..10),
        mix in u64s(0..8_000),
        masks in vecs(usizes(0..64), 1..6),
    ) => {
        let workers = 1 + (mix % 4) as usize;
        let bench: Box<dyn Benchmark> = {
            let mut all = mixp_kernels::all_kernels_small();
            all.swap_remove(pick % all.len())
        };
        let pm = bench.program().clone();
        // Alternate single-lowered variable subsets (some split clusters
        // and must not compile) with random three-way precision draws.
        let cfgs: Vec<PrecisionConfig> = masks
            .iter()
            .enumerate()
            .map(|(i, &mask)| {
                if i % 2 == 0 {
                    let lowered = pm
                        .tunable_vars()
                        .into_iter()
                        .filter(|v| (mask >> (v.index() % 6)) & 1 == 1);
                    PrecisionConfig::from_lowered(pm.var_count(), lowered)
                } else {
                    let mut cfg = pm.config_all_double();
                    let mut rng = SplitMix64::new(mask as u64 ^ (mix << 8));
                    for v in pm.tunable_vars() {
                        match rng.next_range(4) {
                            0 | 1 => {}
                            2 => cfg.set(v, mixp_float::Precision::Single),
                            _ => cfg.set(v, mixp_float::Precision::Half),
                        }
                    }
                    cfg
                }
            })
            .collect();

        let direct_bench = DirectOnly(bench.as_ref());
        let mut direct = EvaluatorBuilder::new(QualityThreshold::new(1e-3))
            .workers(workers)
            .build(&direct_bench);
        let direct_results = direct.evaluate_batch(&cfgs);

        let mut planned = EvaluatorBuilder::new(QualityThreshold::new(1e-3))
            .workers(workers)
            .build(bench.as_ref());
        let planned_results = planned.evaluate_batch(&cfgs);

        prop_assert_eq!(direct_results.len(), planned_results.len());
        for (d, p) in direct_results.iter().zip(&planned_results) {
            match (d, p) {
                (Ok(dr), Ok(pr)) => {
                    prop_assert_eq!(dr.compiled, pr.compiled);
                    prop_assert_eq!(dr.passes, pr.passes);
                    prop_assert_eq!(dr.quality.to_bits(), pr.quality.to_bits());
                    prop_assert_eq!(dr.speedup.to_bits(), pr.speedup.to_bits());
                }
                (Err(de), Err(pe)) => prop_assert_eq!(de, pe),
                other => prop_assert!(false, "paths diverge: {:?}", other),
            }
        }
    });
}

/// The evaluator's speedup and quality are invariant under evaluation
/// order (no hidden state leaks between evaluations).
#[test]
fn evaluation_order_does_not_matter() {
    prop_check!((seed in u64s(0..500)) => {
        let bench = RandomBench::new(6, &[(0, 1), (2, 3)], seed);
        let pm = bench.program();
        let clusters: Vec<_> = pm.clustering().ids().collect();
        let cfg_a = pm.config_from_clusters([clusters[0]]);
        let cfg_b = pm.config_from_clusters(clusters.iter().copied());
        let mut ev1 = Evaluator::new(&bench, QualityThreshold::new(1e-3));
        let a1 = ev1.evaluate(&cfg_a).unwrap();
        let b1 = ev1.evaluate(&cfg_b).unwrap();
        let mut ev2 = Evaluator::new(&bench, QualityThreshold::new(1e-3));
        let b2 = ev2.evaluate(&cfg_b).unwrap();
        let a2 = ev2.evaluate(&cfg_a).unwrap();
        prop_assert_eq!(a1.quality, a2.quality);
        prop_assert_eq!(b1.quality, b2.quality);
        prop_assert_eq!(a1.speedup, a2.speedup);
        prop_assert_eq!(b1.speedup, b2.speedup);
    });
}
