//! End-to-end integration tests: full searches through the public API,
//! spanning kernels, applications and all six algorithms.

use mixp_core::{Evaluator, EvaluatorBuilder, QualityThreshold};
use mixp_harness::{benchmark_by_name, Scale};
use mixp_search::{algorithm_by_name, all_algorithms, DeltaDebug, SearchAlgorithm};

/// Every algorithm terminates on every kernel and returns a configuration
/// that genuinely passes its threshold.
#[test]
fn all_algorithms_terminate_on_all_kernels() {
    for bench in mixp_kernels::all_kernels_small() {
        for algo in all_algorithms() {
            let mut ev = Evaluator::new(bench.as_ref(), QualityThreshold::new(1e-3));
            let result = algo.search(&mut ev);
            assert!(
                !result.dnf,
                "{} on {} must terminate without budget pressure",
                algo.name(),
                bench.name()
            );
            if let Some(best) = &result.best {
                assert!(best.passes);
                assert!(best.compiled);
                assert!(
                    !best.config.is_all_double(),
                    "the identity configuration is not a result"
                );
            }
        }
    }
}

/// Search results are deterministic: running the same algorithm twice on a
/// fresh evaluator yields identical metrics.
#[test]
fn searches_are_deterministic() {
    for algo_name in ["CB", "CM", "DD", "HR", "HC", "GA"] {
        let algo = algorithm_by_name(algo_name).unwrap();
        let run = || {
            let bench = benchmark_by_name("eos", Scale::Small).unwrap();
            let mut ev = Evaluator::new(bench.as_ref(), QualityThreshold::new(1e-8));
            let r = algo.search(&mut ev);
            (r.evaluated, r.speedup(), r.quality())
        };
        assert_eq!(run(), run(), "{algo_name} must be deterministic");
    }
}

/// The best configuration a search reports can be re-evaluated and
/// reproduces exactly the recorded quality and speedup.
#[test]
fn reported_best_is_reproducible() {
    let bench = benchmark_by_name("hydro-1d", Scale::Small).unwrap();
    let mut ev = Evaluator::new(bench.as_ref(), QualityThreshold::new(1e-3));
    let result = DeltaDebug::new().search(&mut ev);
    let best = result.best.expect("hydro-1d passes at 1e-3");

    let mut ev2 = Evaluator::new(bench.as_ref(), QualityThreshold::new(1e-3));
    let re = ev2.evaluate(&best.config).unwrap();
    assert_eq!(re.quality, best.quality);
    assert_eq!(re.speedup, best.speedup);
    assert!(re.passes);
}

/// Tightening the threshold can only shrink (or keep) the set of passing
/// configurations: a config accepted at 1e-8 is accepted at 1e-3.
#[test]
fn threshold_monotonicity_across_searches() {
    let bench = benchmark_by_name("int-predict", Scale::Small).unwrap();
    let mut strict = Evaluator::new(bench.as_ref(), QualityThreshold::new(1e-8));
    let strict_result = DeltaDebug::new().search(&mut strict);
    if let Some(best) = strict_result.best {
        let mut loose = Evaluator::new(bench.as_ref(), QualityThreshold::new(1e-3));
        let re = loose.evaluate(&best.config).unwrap();
        assert!(re.passes, "strict-passing config must pass loosely");
    }
}

/// The budget mechanism really is the only source of DNF: with an ample
/// budget nothing DNFs on the kernels, with budget 1 everything beyond one
/// evaluation does.
#[test]
fn dnf_comes_only_from_budget() {
    let bench = benchmark_by_name("eos", Scale::Small).unwrap();
    // eos has 2 clusters: CB needs 3 evaluations.
    let algo = algorithm_by_name("CB").unwrap();
    let mut ample = EvaluatorBuilder::new(QualityThreshold::new(1e-3))
        .budget(100)
        .build(bench.as_ref());
    assert!(!algo.search(&mut ample).dnf);
    let mut tiny = EvaluatorBuilder::new(QualityThreshold::new(1e-3))
        .budget(1)
        .build(bench.as_ref());
    assert!(algo.search(&mut tiny).dnf);
}

/// Cluster-granularity searches never produce configurations that fail to
/// compile; variable-granularity ones can, but such configurations never
/// pass.
#[test]
fn compile_validity_by_granularity() {
    let bench = benchmark_by_name("innerprod", Scale::Small).unwrap();
    let program = bench.program();
    // The {z, x} cluster cannot be split.
    let z = program.registry().find("z").unwrap();
    let mut cfg = program.config_all_double();
    cfg.set(z, mixp_core::Precision::Single);
    let mut ev = Evaluator::new(bench.as_ref(), QualityThreshold::new(1.0));
    let rec = ev.evaluate(&cfg).unwrap();
    assert!(!rec.compiled);
    assert!(!rec.passes, "uncompilable configs never pass any threshold");
}

/// SRAD end-to-end: no algorithm at any threshold ever returns a
/// configuration with destroyed output.
#[test]
fn srad_never_returns_nan_configs() {
    let bench = benchmark_by_name("srad", Scale::Small).unwrap();
    for threshold in [1e-3, 1e-6] {
        for algo_name in ["DD", "GA"] {
            let bench2 = benchmark_by_name("srad", Scale::Small).unwrap();
            let algo = algorithm_by_name(algo_name).unwrap();
            let mut ev = Evaluator::new(bench2.as_ref(), QualityThreshold::new(threshold));
            let result = algo.search(&mut ev);
            if let Some(best) = result.best {
                assert!(
                    best.quality.is_finite(),
                    "{algo_name}@{threshold:e} returned a destroyed config"
                );
            }
        }
    }
    let _ = bench;
}
