//! Integration tests for the campaign service, run against an in-process
//! daemon ([`mixp_serve::DaemonHandle`]): protocol coverage, typed
//! rejections under garbage input, admission control, fairness across
//! concurrent clients, subscription streaming, and bit-identity of
//! service outcomes against direct `run_campaign` runs.

use mixp_harness::checkpoint::{compact, result_doc};
use mixp_harness::json::Json;
use mixp_harness::scheduler::{run_campaign, CampaignOptions, RetryPolicy};
use mixp_harness::{Fault, FaultPlan, Job, Scale};
use mixp_serve::protocol::{FaultSpec, SubmitOptions};
use mixp_serve::{Client, DaemonConfig, DaemonHandle, ServeConfig};
use std::io::Write;
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn arena(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mixp-serve-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("arena");
    dir
}

fn start(dir: &PathBuf, serve: ServeConfig) -> DaemonHandle {
    DaemonHandle::start(DaemonConfig {
        socket: dir.join("serve.sock"),
        state_dir: dir.join("state"),
        serve,
    })
    .expect("daemon start")
}

fn connect(dir: &PathBuf) -> Client {
    Client::connect_within(&dir.join("serve.sock"), Duration::from_secs(10)).expect("connect")
}

fn job(benchmark: &str, algorithm: &str, budget: usize) -> Job {
    let mut job = Job::new(benchmark, algorithm, 1e-3, Scale::Small);
    job.budget = budget;
    job
}

fn submit_ok(client: &mut Client, tenant: &str, jobs: &[Job], options: &SubmitOptions) -> u64 {
    let doc = client.submit(tenant, None, jobs, options).expect("submit");
    assert_eq!(doc.get("ok"), Some(&Json::Bool(true)), "{doc:?}");
    doc.get("id").and_then(Json::as_f64).expect("id") as u64
}

fn wait_terminal(client: &mut Client, id: u64) -> Json {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let doc = client.status(id).expect("status");
        let state = doc.get("state").and_then(Json::as_str).unwrap_or("");
        if matches!(state, "done" | "cancelled") {
            return doc;
        }
        assert!(Instant::now() < deadline, "campaign {id} never terminal: {doc:?}");
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn error_kind(doc: &Json) -> &str {
    doc.get("error")
        .and_then(|e| e.get("kind"))
        .and_then(Json::as_str)
        .unwrap_or("")
}

/// Compares the service's per-cell documents with a direct scheduler run,
/// field by field (f64s compare bit-exactly through the compact renderer).
fn assert_bit_identical(status: &Json, jobs: &[Job], options: &SubmitOptions) {
    let mut faults = FaultPlan::new();
    for spec in &options.faults {
        faults = faults.inject(spec.job, spec.fault, spec.attempts);
    }
    let opts = CampaignOptions {
        workers: 1,
        retry: RetryPolicy::attempts(options.retries.unwrap_or(1)),
        faults,
        ..CampaignOptions::default()
    };
    let direct = run_campaign(jobs, &opts);
    let cells = status.get("cells").and_then(Json::as_array).expect("cells");
    assert_eq!(cells.len(), direct.len());
    for (index, (cell, outcome)) in cells.iter().zip(&direct).enumerate() {
        let state = cell.get("state").and_then(Json::as_str).unwrap_or("");
        match (&outcome.outcome, state) {
            (Ok(result), "done") => {
                let Json::Object(expected) = result_doc(index, &jobs[index], result) else {
                    unreachable!()
                };
                for (field, want) in &expected {
                    if field == "job" {
                        continue;
                    }
                    assert_eq!(
                        cell.get(field).map(compact),
                        Some(compact(want)),
                        "cell {index} field `{field}` diverged"
                    );
                }
            }
            (Err(error), "failed") => {
                assert_eq!(
                    cell.get("code").and_then(Json::as_str),
                    Some(error.code()),
                    "cell {index} failure code diverged"
                );
            }
            (_, other) => panic!("cell {index}: direct {:?} vs service `{other}`",
                outcome.outcome.as_ref().map(|_| "ok")),
        }
    }
}

#[test]
fn submitted_campaign_matches_direct_run_bit_for_bit() {
    let dir = arena("bits");
    let daemon = start(&dir, ServeConfig::default());
    let mut client = connect(&dir);
    let jobs = vec![job("tridiag", "DD", 8), job("innerprod", "CM", 6), job("eos", "CB", 6)];
    let options = SubmitOptions::default();
    let id = submit_ok(&mut client, "alice", &jobs, &options);
    let status = wait_terminal(&mut client, id);
    assert_eq!(status.get("state").and_then(Json::as_str), Some("done"));
    assert_bit_identical(&status, &jobs, &options);
    daemon.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn faulted_and_retried_campaign_matches_direct_run() {
    let dir = arena("faults");
    let daemon = start(&dir, ServeConfig::default());
    let mut client = connect(&dir);
    // Job 0 panics on its first attempt and heals on retry; job 1 is
    // permanently NaN-poisoned and must fail with a typed code.
    let jobs = vec![job("tridiag", "DD", 6), job("innerprod", "DD", 6)];
    let mut options = SubmitOptions::default();
    options.retries = Some(2);
    options.faults.push(FaultSpec { job: 0, fault: Fault::Panic { at_eval: 0 }, attempts: 1 });
    options.faults.push(FaultSpec {
        job: 1,
        fault: Fault::NanOutput { from_eval: 0 },
        attempts: u32::MAX,
    });
    let id = submit_ok(&mut client, "alice", &jobs, &options);
    let status = wait_terminal(&mut client, id);
    assert_bit_identical(&status, &jobs, &options);
    daemon.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn garbage_lines_get_typed_errors_and_never_kill_the_daemon() {
    let dir = arena("garbage");
    let daemon = start(&dir, ServeConfig::default());
    let mut client = connect(&dir);
    let bad_lines = [
        "not json at all",
        "{\"op\":",                                    // torn JSON
        "{}",                                          // no op
        "{\"op\":\"frobnicate\"}",                     // unknown op
        "{\"op\":\"submit\"}",                         // missing tenant/jobs
        "{\"op\":\"submit\",\"tenant\":\"\",\"jobs\":[]}", // empty tenant
        "{\"op\":\"status\"}",                         // missing id
        "{\"op\":\"status\",\"id\":-3}",               // bad id
        "{\"op\":\"status\",\"id\":1.5}",              // non-integer id
        "[1,2,3]",                                     // not an object
    ];
    for line in bad_lines {
        let doc = client.request(line).expect("daemon must answer");
        assert_eq!(doc.get("ok"), Some(&Json::Bool(false)), "{line}");
        assert_eq!(error_kind(&doc), "bad-request", "{line}");
    }
    // Unknown campaign ids are their own kind.
    let doc = client.status(999_999).expect("status");
    assert_eq!(error_kind(&doc), "unknown-campaign");
    let doc = client.cancel(999_999).expect("cancel");
    assert_eq!(error_kind(&doc), "unknown-campaign");
    // An oversized line gets that connection closed — the daemon may hang
    // up mid-write, so the client sees EPIPE; both are acceptable...
    let mut raw = UnixStream::connect(dir.join("serve.sock")).expect("raw connect");
    let huge = format!("{{\"op\":\"list\",\"pad\":\"{}\"}}\n", "x".repeat(2 << 20));
    let _ = raw.write_all(huge.as_bytes());
    // ...while the daemon keeps serving everyone else.
    let id = submit_ok(&mut client, "alice", &[job("tridiag", "DD", 4)], &SubmitOptions::default());
    let status = wait_terminal(&mut client, id);
    assert_eq!(status.get("state").and_then(Json::as_str), Some("done"));
    daemon.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn admission_control_enforces_quota_depth_and_idempotency() {
    let dir = arena("admission");
    let mut serve = ServeConfig::default();
    serve.queue_depth = 2;
    serve.workers = 1;
    serve.quotas.push(("cheap".to_string(), 10));
    let daemon = start(&dir, serve);
    let mut client = connect(&dir);

    // Quota: 10 units admit one 8-unit campaign, then reject the next.
    let slow_jobs = vec![job("tridiag", "DD", 8)];
    let mut slow = SubmitOptions::default();
    slow.faults.push(FaultSpec { job: 0, fault: Fault::SlowMs(40), attempts: u32::MAX });
    let first = client.submit("cheap", Some("k1"), &slow_jobs, &slow).expect("submit");
    assert_eq!(first.get("ok"), Some(&Json::Bool(true)));
    let doc = client.submit("cheap", Some("k2"), &slow_jobs, &slow).expect("submit");
    assert_eq!(error_kind(&doc), "quota-exceeded");

    // Idempotency: resubmitting k1 dedupes onto the same id, no new charge.
    let again = client.submit("cheap", Some("k1"), &slow_jobs, &slow).expect("submit");
    assert_eq!(again.get("duplicate"), Some(&Json::Bool(true)));
    assert_eq!(again.get("id"), first.get("id"));
    let listing = client.list(Some("cheap")).expect("list");
    let tenants = listing.get("tenants").and_then(Json::as_array).expect("tenants");
    let cheap = tenants
        .iter()
        .find(|t| t.get("tenant").and_then(Json::as_str) == Some("cheap"))
        .expect("cheap ledger");
    assert_eq!(cheap.get("used").and_then(Json::as_f64), Some(8.0));

    // Depth: with one slot used, one more non-terminal campaign fills the
    // queue; a third tenant-distinct submission bounces with queue-full.
    let ok = client.submit("rich", None, &slow_jobs, &slow).expect("submit");
    assert_eq!(ok.get("ok"), Some(&Json::Bool(true)));
    let doc = client.submit("rich", None, &slow_jobs, &slow).expect("submit");
    assert_eq!(error_kind(&doc), "queue-full");

    daemon.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cancel_skips_pending_cells() {
    let dir = arena("cancel");
    let mut serve = ServeConfig::default();
    serve.workers = 1; // serialize so the victim is still queued
    let daemon = start(&dir, serve);
    let mut client = connect(&dir);
    let mut slow = SubmitOptions::default();
    slow.faults.push(FaultSpec { job: 0, fault: Fault::SlowMs(30), attempts: u32::MAX });
    let busy = submit_ok(&mut client, "alice", &[job("tridiag", "DD", 8)], &slow);
    let victim = submit_ok(
        &mut client,
        "alice",
        &[job("innerprod", "DD", 6), job("eos", "DD", 6)],
        &SubmitOptions::default(),
    );
    let doc = client.cancel(victim).expect("cancel");
    assert_eq!(doc.get("ok"), Some(&Json::Bool(true)), "{doc:?}");
    let status = wait_terminal(&mut client, victim);
    assert_eq!(status.get("state").and_then(Json::as_str), Some("cancelled"));
    let cells = status.get("cells").and_then(Json::as_array).expect("cells");
    // Every cell either finished before the cancel landed or was skipped —
    // none may still be pending in a terminal campaign.
    for cell in cells {
        let state = cell.get("state").and_then(Json::as_str).unwrap_or("");
        assert!(matches!(state, "skipped" | "done" | "failed"), "{state}");
    }
    assert!(
        cells.iter().any(|c| c.get("state").and_then(Json::as_str) == Some("skipped")),
        "cancel before dispatch must skip at least one cell"
    );
    wait_terminal(&mut client, busy);
    daemon.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn subscribe_streams_progress_records_until_done_trailer() {
    let dir = arena("subscribe");
    let daemon = start(&dir, ServeConfig::default());
    let mut client = connect(&dir);
    // Slow the evaluations down so the subscription provably lands while
    // the campaign is still running.
    let mut slow = SubmitOptions::default();
    slow.faults.push(FaultSpec { job: 0, fault: Fault::SlowMs(25), attempts: u32::MAX });
    let id = submit_ok(&mut client, "alice", &[job("tridiag", "DD", 10)], &slow);
    let mut sub = connect(&dir);
    let mut records = 0usize;
    let trailer = sub.subscribe(id, |_record| records += 1).expect("subscribe");
    assert_eq!(trailer.get("done"), Some(&Json::Bool(true)), "{trailer:?}");
    assert_eq!(trailer.get("state").and_then(Json::as_str), Some("done"));
    assert!(records > 0, "a live subscription must stream obs records");
    // Subscribing to an already-terminal campaign yields an immediate
    // empty stream with the same trailer shape.
    let mut late = connect(&dir);
    let mut late_records = 0usize;
    let trailer = late.subscribe(id, |_record| late_records += 1).expect("late subscribe");
    assert_eq!(trailer.get("done"), Some(&Json::Bool(true)));
    assert_eq!(late_records, 0);
    // Unknown campaigns are a typed rejection, not a hang.
    let doc = late.subscribe(999_999, |_| {}).expect("unknown subscribe");
    assert_eq!(error_kind(&doc), "unknown-campaign");
    daemon.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn concurrent_clients_all_reach_terminal_states() {
    let dir = arena("concurrent");
    let mut serve = ServeConfig::default();
    serve.workers = 2;
    let daemon = start(&dir, serve);
    let benchmarks = ["tridiag", "innerprod", "eos", "hydro-1d"];
    std::thread::scope(|scope| {
        for c in 0..6usize {
            let dir = &dir;
            scope.spawn(move || {
                let mut client = connect(dir);
                let tenant = format!("t{}", c % 3);
                for n in 0..4usize {
                    let jobs = vec![job(benchmarks[(c + n) % benchmarks.len()], "DD", 4)];
                    let id = submit_ok(&mut client, &tenant, &jobs, &SubmitOptions::default());
                    let status = wait_terminal(&mut client, id);
                    assert_eq!(status.get("state").and_then(Json::as_str), Some("done"));
                }
            });
        }
    });
    // The daemon's own ledger agrees: 24 campaigns, all terminal.
    let mut client = connect(&dir);
    let listing = client.list(None).expect("list");
    let campaigns = listing.get("campaigns").and_then(Json::as_array).expect("campaigns");
    assert_eq!(campaigns.len(), 24);
    assert!(campaigns
        .iter()
        .all(|c| c.get("state").and_then(Json::as_str) == Some("done")));
    daemon.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn shutdown_is_acknowledged_and_drains() {
    let dir = arena("shutdown");
    let daemon = start(&dir, ServeConfig::default());
    let mut client = connect(&dir);
    let doc = client.shutdown().expect("shutdown");
    assert_eq!(doc.get("ok"), Some(&Json::Bool(true)));
    daemon.wait(); // returns because the client asked for shutdown
    assert!(!dir.join("serve.sock").exists(), "socket must be removed");
    let _ = std::fs::remove_dir_all(&dir);
}
