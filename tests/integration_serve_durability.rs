//! Durability tests for the campaign service: a **real** daemon process
//! (the `harness serve` binary, located via `CARGO_BIN_EXE_harness`) is
//! `SIGKILL`ed mid-campaign and restarted on the same state directory.
//! The resumed campaigns must finish with outcomes bit-identical to an
//! uninterrupted direct `run_campaign`, quota ledgers must survive
//! exactly, idempotency keys must keep deduplicating across the restart,
//! and a journal polluted with torn/garbage lines must replay cleanly.

use mixp_harness::checkpoint::{compact, result_doc};
use mixp_harness::json::Json;
use mixp_harness::scheduler::{run_campaign, CampaignOptions, RetryPolicy};
use mixp_harness::{Fault, FaultPlan, Job, Scale};
use mixp_serve::protocol::{FaultSpec, SubmitOptions};
use mixp_serve::Client;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn arena(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mixp-serve-dur-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("arena");
    dir
}

fn spawn_daemon(dir: &Path) -> Child {
    Command::new(env!("CARGO_BIN_EXE_harness"))
        .arg("serve")
        .arg("--socket")
        .arg(dir.join("serve.sock"))
        .arg("--state")
        .arg(dir.join("state"))
        .arg("--workers")
        .arg("2")
        .stdout(Stdio::null())
        .stdin(Stdio::null())
        .spawn()
        .expect("spawn daemon")
}

fn connect(dir: &Path) -> Client {
    Client::connect_within(&dir.join("serve.sock"), Duration::from_secs(30)).expect("connect")
}

fn job(benchmark: &str, algorithm: &str, budget: usize) -> Job {
    let mut job = Job::new(benchmark, algorithm, 1e-3, Scale::Small);
    job.budget = budget;
    job
}

fn wait_terminal(client: &mut Client, id: u64) -> Json {
    let deadline = Instant::now() + Duration::from_secs(180);
    loop {
        let doc = client.status(id).expect("status");
        let state = doc.get("state").and_then(Json::as_str).unwrap_or("");
        if matches!(state, "done" | "cancelled") {
            return doc;
        }
        assert!(Instant::now() < deadline, "campaign {id} never terminal: {doc:?}");
        std::thread::sleep(Duration::from_millis(25));
    }
}

fn tenant_used(client: &mut Client, tenant: &str) -> usize {
    let listing = client.list(Some(tenant)).expect("list");
    listing
        .get("tenants")
        .and_then(Json::as_array)
        .and_then(|ts| {
            ts.iter()
                .find(|t| t.get("tenant").and_then(Json::as_str) == Some(tenant))
        })
        .and_then(|t| t.get("used"))
        .and_then(Json::as_f64)
        .expect("tenant ledger") as usize
}

fn assert_bit_identical(status: &Json, jobs: &[Job], options: &SubmitOptions) {
    let mut faults = FaultPlan::new();
    for spec in &options.faults {
        faults = faults.inject(spec.job, spec.fault, spec.attempts);
    }
    let opts = CampaignOptions {
        workers: 1,
        retry: RetryPolicy::attempts(options.retries.unwrap_or(1)),
        faults,
        ..CampaignOptions::default()
    };
    let direct = run_campaign(jobs, &opts);
    let cells = status.get("cells").and_then(Json::as_array).expect("cells");
    assert_eq!(cells.len(), direct.len());
    for (index, (cell, outcome)) in cells.iter().zip(&direct).enumerate() {
        let state = cell.get("state").and_then(Json::as_str).unwrap_or("");
        match (&outcome.outcome, state) {
            (Ok(result), "done") => {
                let Json::Object(expected) = result_doc(index, &jobs[index], result) else {
                    unreachable!()
                };
                for (field, want) in &expected {
                    if field == "job" {
                        continue;
                    }
                    assert_eq!(
                        cell.get(field).map(compact),
                        Some(compact(want)),
                        "cell {index} field `{field}` diverged after restart"
                    );
                }
            }
            (Err(error), "failed") => {
                assert_eq!(
                    cell.get("code").and_then(Json::as_str),
                    Some(error.code()),
                    "cell {index} failure code diverged after restart"
                );
            }
            (_, other) => panic!("cell {index}: direct {:?} vs service `{other}`",
                outcome.outcome.as_ref().map(|_| "ok")),
        }
    }
}

#[test]
fn sigkill_mid_campaign_resumes_with_identical_outcomes() {
    let dir = arena("kill");
    let mut child = spawn_daemon(&dir);
    let mut client = connect(&dir);

    // A slow three-cell campaign: each cell sleeps per evaluation, so the
    // kill provably lands with work still in flight.
    let slow_jobs = vec![
        job("tridiag", "DD", 6),
        job("innerprod", "CM", 6),
        job("eos", "DD", 6),
    ];
    let mut slow = SubmitOptions::default();
    for j in 0..slow_jobs.len() {
        slow.faults.push(FaultSpec { job: j, fault: Fault::SlowMs(40), attempts: u32::MAX });
    }
    // Plus a fast campaign with a heal-on-retry fault, to cross-check the
    // restart does not grant killed cells extra attempts.
    let retry_jobs = vec![job("hydro-1d", "DD", 5)];
    let mut retry = SubmitOptions::default();
    retry.retries = Some(2);
    retry.faults.push(FaultSpec { job: 0, fault: Fault::Panic { at_eval: 0 }, attempts: 1 });

    let ack = client.submit("dur", Some("slow-k"), &slow_jobs, &slow).expect("submit");
    assert_eq!(ack.get("ok"), Some(&Json::Bool(true)), "{ack:?}");
    let slow_id = ack.get("id").and_then(Json::as_f64).expect("id") as u64;
    let ack = client.submit("dur", Some("retry-k"), &retry_jobs, &retry).expect("submit");
    let retry_id = ack.get("id").and_then(Json::as_f64).expect("id") as u64;
    let used_before = tenant_used(&mut client, "dur");
    assert_eq!(
        used_before,
        slow_jobs.iter().map(|j| j.budget).sum::<usize>()
            + retry_jobs.iter().map(|j| j.budget).sum::<usize>()
    );

    // Wait until the slow campaign is demonstrably mid-flight (running,
    // not yet terminal), then SIGKILL the daemon.
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let doc = client.status(slow_id).expect("status");
        let state = doc.get("state").and_then(Json::as_str).unwrap_or("");
        if state == "running" {
            break;
        }
        assert_ne!(state, "done", "campaign finished before the kill landed");
        assert!(Instant::now() < deadline, "campaign never started");
        std::thread::sleep(Duration::from_millis(10));
    }
    child.kill().expect("SIGKILL daemon");
    let _ = child.wait();

    // Restart on the same state directory; the journal replay must bring
    // both campaigns back, with the quota ledger intact.
    let mut child = spawn_daemon(&dir);
    let mut client = connect(&dir);
    assert_eq!(tenant_used(&mut client, "dur"), used_before, "quota lost in restart");

    // The idempotency key survives the restart: resubmitting dedupes onto
    // the original id instead of admitting (and charging) a new campaign.
    let again = client.submit("dur", Some("slow-k"), &slow_jobs, &slow).expect("resubmit");
    assert_eq!(again.get("duplicate"), Some(&Json::Bool(true)), "{again:?}");
    assert_eq!(again.get("id").and_then(Json::as_f64), Some(slow_id as f64));
    assert_eq!(tenant_used(&mut client, "dur"), used_before, "dedupe double-charged");

    // Both campaigns run to completion with outcomes bit-identical to
    // uninterrupted direct runs.
    let slow_status = wait_terminal(&mut client, slow_id);
    assert_eq!(slow_status.get("state").and_then(Json::as_str), Some("done"));
    assert_bit_identical(&slow_status, &slow_jobs, &slow);
    let retry_status = wait_terminal(&mut client, retry_id);
    assert_bit_identical(&retry_status, &retry_jobs, &retry);

    let _ = client.shutdown();
    let status = child.wait().expect("daemon wait");
    assert!(status.success(), "daemon exited with {status:?}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn polluted_journal_replays_cleanly() {
    let dir = arena("pollute");
    let mut child = spawn_daemon(&dir);
    let mut client = connect(&dir);
    let jobs = vec![job("tridiag", "DD", 5)];
    let ack = client.submit("dur", Some("p-k"), &jobs, &SubmitOptions::default()).expect("submit");
    let id = ack.get("id").and_then(Json::as_f64).expect("id") as u64;
    let done = wait_terminal(&mut client, id);
    assert_eq!(done.get("state").and_then(Json::as_str), Some("done"));
    let _ = client.shutdown();
    assert!(child.wait().expect("wait").success());

    // Pollute the journal: a garbage line, an unknown record type, and a
    // torn (no trailing newline) half-record, as a crash could leave.
    let journal = dir.join("state").join("queue.jsonl");
    let mut file = std::fs::OpenOptions::new().append(true).open(&journal).expect("open journal");
    file.write_all(b"this is not json\n").expect("garbage");
    file.write_all(b"{\"type\":\"from-the-future\",\"id\":7}\n").expect("unknown");
    file.write_all(b"{\"type\":\"cell\",\"campaign\":99").expect("torn tail");
    drop(file);

    // The daemon must start, keep the finished campaign (bit-identically),
    // and still dedupe its key.
    let mut child = spawn_daemon(&dir);
    let mut client = connect(&dir);
    let status = client.status(id).expect("status");
    assert_eq!(status.get("state").and_then(Json::as_str), Some("done"));
    assert_bit_identical(&status, &jobs, &SubmitOptions::default());
    let again = client.submit("dur", Some("p-k"), &jobs, &SubmitOptions::default()).expect("resubmit");
    assert_eq!(again.get("duplicate"), Some(&Json::Bool(true)));
    // And brand-new work still flows after the polluted replay.
    let ack = client.submit("dur", None, &jobs, &SubmitOptions::default()).expect("submit");
    let fresh = ack.get("id").and_then(Json::as_f64).expect("id") as u64;
    let fresh_status = wait_terminal(&mut client, fresh);
    assert_eq!(fresh_status.get("state").and_then(Json::as_str), Some("done"));

    let _ = client.shutdown();
    assert!(child.wait().expect("wait").success());
    let _ = std::fs::remove_dir_all(&dir);
}
