//! Integration tests for preemptive deadlines: the campaign watchdog
//! cancels hung jobs (which the cooperative deadline can never reach),
//! quarantines workers that are wedged beyond recall, and — when no token
//! ever fires — leaves campaign results bit-identical to a watchdog-less
//! run for any worker count.

use mixp_harness::faultplan::Fault;
use mixp_harness::job::JobError;
use mixp_harness::scheduler::{run_campaign, CampaignOptions, RetryPolicy};
use mixp_harness::{FaultPlan, Job, Scale};
use mixp_core::Obs;
use std::time::Duration;

fn jobs(names: &[&str]) -> Vec<Job> {
    names
        .iter()
        .map(|b| Job::new(b, "DD", 1e-3, Scale::Small))
        .collect()
}

/// The acceptance scenario: one cell hangs for 60 s inside its evaluations,
/// the campaign deadline is 200 ms. The cooperative deadline never gets a
/// chance (the job is stuck inside a single run), so the watchdog fires the
/// job's cancel token; the run unwinds at its next cancellation point, the
/// cell is retried per the RetryPolicy and finally reported as
/// FAILED(deadline) — while every healthy cell completes normally and the
/// thread count never exceeds the configured workers plus one quarantine
/// replacement.
#[test]
fn hung_job_is_cancelled_retried_and_reported_without_sinking_the_campaign() {
    let jobs = jobs(&["tridiag", "innerprod", "eos"]);
    let obs = Obs::in_memory();
    let outcomes = run_campaign(
        &jobs,
        &CampaignOptions {
            workers: 2,
            deadline: Some(Duration::from_millis(200)),
            retry: RetryPolicy::attempts(2),
            faults: FaultPlan::new().inject(0, Fault::HangMs(60_000), u32::MAX),
            obs: obs.clone(),
            ..CampaignOptions::default()
        },
    );
    assert!(
        matches!(
            outcomes[0].outcome,
            Err(JobError::DeadlineExceeded { limit_ms: 200 })
        ),
        "{:?}",
        outcomes[0].outcome
    );
    assert_eq!(outcomes[0].attempts, 2, "transient timeout is retried");
    assert!(outcomes[1].outcome.is_ok(), "healthy sibling unaffected");
    assert!(outcomes[2].outcome.is_ok(), "healthy sibling unaffected");

    let snap = obs.metrics_snapshot().unwrap();
    assert!(
        snap.counters.get("watchdog.fired").copied().unwrap_or(0) >= 1,
        "the watchdog must have fired the hung job's token"
    );
    // The hang polls its token, so it unwinds within the grace period —
    // no quarantine, no extra threads beyond the configured pool.
    assert_eq!(snap.counters.get("pool.quarantined").copied().unwrap_or(0), 0);
    assert!(
        snap.gauges.get("pool.peak_threads").copied().unwrap_or(0.0) <= 2.0,
        "2 workers must never need more than 1 pool thread + 1 replacement"
    );
}

/// A worker wedged beyond recall — stuck in a blocking sleep with no
/// cancellation point — is quarantined: the watchdog fires the token, waits
/// out the grace period, and hands the worker's deque to a fresh
/// replacement so the pool regains its capacity. Gauge-verified:
/// `pool.quarantined == 1` and peak threads stay within workers + 1.
#[test]
fn wedged_worker_is_quarantined_and_replaced() {
    // Both cells block in one uncancellable 400 ms sleep. One runs on the
    // pool's worker thread (quarantined), one on the batch caller (nothing
    // to quarantine) — so exactly one quarantine, whichever thread claims
    // which cell.
    let jobs = jobs(&["tridiag", "innerprod"]);
    let obs = Obs::in_memory();
    let outcomes = run_campaign(
        &jobs,
        &CampaignOptions {
            workers: 2,
            deadline: Some(Duration::from_millis(50)),
            grace: Duration::from_millis(5),
            faults: FaultPlan::new()
                .inject(0, Fault::SlowMs(400), u32::MAX)
                .inject(1, Fault::SlowMs(400), u32::MAX),
            obs: obs.clone(),
            ..CampaignOptions::default()
        },
    );
    for outcome in &outcomes {
        assert!(
            matches!(
                outcome.outcome,
                Err(JobError::DeadlineExceeded { limit_ms: 50 })
            ),
            "{:?}",
            outcome.outcome
        );
    }

    // The abandoned worker exits on its own schedule once its sleep ends;
    // wait for the live-thread gauge to settle before asserting.
    let mut snap = obs.metrics_snapshot().unwrap();
    for _ in 0..2000 {
        if snap.gauges.get("pool.live_threads").copied() == Some(0.0) {
            break;
        }
        std::thread::sleep(Duration::from_millis(1));
        snap = obs.metrics_snapshot().unwrap();
    }
    assert_eq!(
        snap.counters.get("pool.quarantined").copied().unwrap_or(0),
        1,
        "exactly one worker slot is handed to a replacement"
    );
    assert_eq!(
        snap.counters.get("watchdog.quarantined").copied().unwrap_or(0),
        1
    );
    assert!(snap.counters.get("watchdog.fired").copied().unwrap_or(0) >= 1);
    assert!(
        snap.gauges.get("pool.peak_threads").copied().unwrap_or(0.0) <= 2.0,
        "1 configured pool thread + 1 quarantine replacement, got {:?}",
        snap.gauges.get("pool.peak_threads")
    );
    assert_eq!(
        snap.gauges.get("pool.live_threads").copied(),
        Some(0.0),
        "all threads, including the replacement, exit with the campaign"
    );
}

/// A quarantined worker's cell must not be retried: the thread is detached
/// (its deque slot belongs to a replacement), so a retry would burn
/// abandoned CPU for another full deadline with a token generation the
/// stale fire cannot reach. The caller-thread cell — never quarantined —
/// keeps its full retry budget. Gauge-verified: exactly one suppressed
/// retry, one quarantine, and an attempt split of 1 + 2 across the cells.
#[test]
fn quarantined_cell_is_not_retried_on_the_detached_thread() {
    let jobs = jobs(&["tridiag", "innerprod"]);
    let obs = Obs::in_memory();
    let outcomes = run_campaign(
        &jobs,
        &CampaignOptions {
            workers: 2,
            deadline: Some(Duration::from_millis(50)),
            grace: Duration::from_millis(5),
            retry: RetryPolicy::attempts(2),
            faults: FaultPlan::new()
                .inject(0, Fault::SlowMs(400), u32::MAX)
                .inject(1, Fault::SlowMs(400), u32::MAX),
            obs: obs.clone(),
            ..CampaignOptions::default()
        },
    );
    for outcome in &outcomes {
        assert!(
            matches!(
                outcome.outcome,
                Err(JobError::DeadlineExceeded { limit_ms: 50 })
            ),
            "{:?}",
            outcome.outcome
        );
    }
    // One cell ran on the pool worker (quarantined, retry suppressed:
    // 1 attempt), the other on the batch caller (full budget: 2
    // attempts). Which cell got which thread is scheduling-dependent.
    let mut attempts: Vec<u32> = outcomes.iter().map(|o| o.attempts).collect();
    attempts.sort_unstable();
    assert_eq!(
        attempts,
        vec![1, 2],
        "quarantined cell stops at 1 attempt, caller cell retries"
    );

    let mut snap = obs.metrics_snapshot().unwrap();
    for _ in 0..2000 {
        if snap.gauges.get("pool.live_threads").copied() == Some(0.0) {
            break;
        }
        std::thread::sleep(Duration::from_millis(1));
        snap = obs.metrics_snapshot().unwrap();
    }
    assert_eq!(
        snap.counters.get("watchdog.quarantined").copied().unwrap_or(0),
        1
    );
    assert_eq!(
        snap.counters.get("campaign.retry_detached").copied().unwrap_or(0),
        1,
        "exactly the quarantined cell's retry is suppressed"
    );
    assert_eq!(
        snap.counters.get("campaign.retries").copied().unwrap_or(0),
        1,
        "exactly the caller cell retries"
    );
    // By the time a slot is quarantined its token has long been fired, so
    // the quarantine-time sweep is a no-op here; it exists for attempts
    // that race onto a slot between fire and quarantine.
    assert_eq!(
        snap.counters
            .get("watchdog.quarantine_fired")
            .copied()
            .unwrap_or(0),
        0
    );
    assert!(
        snap.gauges.get("pool.peak_threads").copied().unwrap_or(0.0) <= 2.0,
        "1 configured pool thread + 1 quarantine replacement, got {:?}",
        snap.gauges.get("pool.peak_threads")
    );
}

/// When the token never fires, the watchdog is pure observation: campaigns
/// run with a generous deadline produce bit-identical results to a
/// deadline-less (watchdog-less) campaign, for any worker count.
#[test]
fn unfired_watchdog_keeps_campaigns_bit_identical_across_worker_counts() {
    let jobs: Vec<Job> = [("eos", "DD"), ("tridiag", "CB"), ("innerprod", "GA")]
        .iter()
        .map(|(b, a)| Job::new(b, a, 1e-3, Scale::Small))
        .collect();
    let baseline = run_campaign(
        &jobs,
        &CampaignOptions {
            workers: 1,
            ..CampaignOptions::default()
        },
    );
    assert!(baseline.iter().all(|o| o.outcome.is_ok()));
    for workers in [1usize, 2, 4] {
        let watched = run_campaign(
            &jobs,
            &CampaignOptions {
                workers,
                deadline: Some(Duration::from_secs(3600)),
                ..CampaignOptions::default()
            },
        );
        for (base, outcome) in baseline.iter().zip(&watched) {
            let (base, watched) = (base.result().unwrap(), outcome.result().unwrap());
            assert_eq!(base.result.evaluated, watched.result.evaluated, "workers={workers}");
            assert_eq!(base.result.dnf, watched.result.dnf);
            match (&base.result.best, &watched.result.best) {
                (None, None) => {}
                (Some(b), Some(w)) => {
                    assert_eq!(b.config.key(), w.config.key(), "workers={workers}");
                    assert_eq!(b.quality.to_bits(), w.quality.to_bits());
                    assert_eq!(b.speedup.to_bits(), w.speedup.to_bits());
                }
                other => panic!("best mismatch at workers={workers}: {other:?}"),
            }
        }
    }
}
